package experiments

// ext-chaos: Quicksand's fungible workload under injected failures.
// The paper's pitch is that proclet granularity makes resources
// fungible; this extension asks what that buys under faults: when
// machines fail-stop and links partition, the control plane re-places
// orphaned compute, rebuilds lost memory-proclet contents from a
// durable source, and invocations bridge the outage with deadline +
// backoff retries. The experiment drives a closed-loop compute+store
// workload through a scripted crash/partition schedule and reports the
// goodput dip, the time to recover after the last fault heals, and the
// recovered goodput fraction against an identical no-fault run.

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/proclet"
	"repro/internal/replication"
	"repro/internal/runpar"
	"repro/internal/sim"
)

// chaosCfg parameterizes the chaos run.
type chaosCfg struct {
	machines  []cluster.MachineConfig
	stores    int           // memory proclets, round-robin over machines
	pool      int           // compute proclets, round-robin over machines
	poolTh    int           // worker threads per compute proclet
	clients   int           // closed-loop drivers (machine 0)
	opCPU     time.Duration // compute slice per op
	opBytes   int64         // payload stored per op
	horizon   sim.Time
	bucket    time.Duration // goodput histogram bucket
	warmup    sim.Time      // excluded from the no-fault goodput mean
	tolerance float64       // recovered-goodput threshold vs no-fault mean
}

func chaosConfig(scale Scale) chaosCfg {
	const MiB = 1 << 20
	// Granularity matters here exactly as the paper argues: the pool is
	// many 2-thread proclets rather than a few machine-sized ones, so
	// after a crash the scheduler can re-spread them — including back
	// onto a restarted machine — one small move at a time.
	cfg := chaosCfg{
		stores:    8,
		pool:      8,
		poolTh:    2,
		clients:   16,
		opCPU:     300 * time.Microsecond,
		opBytes:   1 << 10,
		horizon:   sim.Time(200 * time.Millisecond),
		bucket:    5 * time.Millisecond,
		warmup:    sim.Time(20 * time.Millisecond),
		tolerance: 0.9,
		machines: []cluster.MachineConfig{
			{Cores: 4, MemBytes: 128 * MiB},
			{Cores: 4, MemBytes: 128 * MiB},
			{Cores: 4, MemBytes: 128 * MiB},
			{Cores: 4, MemBytes: 128 * MiB},
		},
	}
	if scale == FullScale {
		cfg.pool = 16
		cfg.poolTh = 2
		cfg.clients = 32
		cfg.opCPU = 500 * time.Microsecond
		cfg.opBytes = 4 << 10
		cfg.horizon = sim.Time(time.Second)
		cfg.bucket = 10 * time.Millisecond
		cfg.warmup = sim.Time(50 * time.Millisecond)
		for i := range cfg.machines {
			cfg.machines[i].Cores = 8
			cfg.machines[i].MemBytes = 512 * MiB
		}
	}
	return cfg
}

// chaosSchedule scripts the faults as fractions of the horizon. Machine
// 0 hosts the clients and never crashes; links touching it degrade and
// partition instead. The last event heals everything, so the tail of
// the run measures recovery.
func chaosSchedule(h sim.Time) (fault.Schedule, sim.Time, sim.Time) {
	at := func(f float64) sim.Time { return sim.Time(float64(h) * f) }
	s := fault.Schedule{
		{At: at(0.15), Op: fault.OpCrash, A: 1},
		{At: at(0.30), Op: fault.OpRestart, A: 1},
		{At: at(0.40), Op: fault.OpPartition, A: 0, B: 2},
		{At: at(0.50), Op: fault.OpHeal, A: 0, B: 2},
		{At: at(0.55), Op: fault.OpCrash, A: 2},
		{At: at(0.55), Op: fault.OpDegrade, A: 0, B: 3,
			Extra: 100 * time.Microsecond, Drop: 0.2},
		{At: at(0.70), Op: fault.OpRestart, A: 2},
		{At: at(0.70), Op: fault.OpHeal, A: 0, B: 3},
	}
	return s, at(0.15), at(0.70) // first fault, final heal
}

// chaosOutcome is one run's measurements.
type chaosOutcome struct {
	goodput    []float64 // completed ops per bucket
	ops        int64     // total acked ops
	failed     int64     // ops that exhausted retries
	lost       int64     // acked objects missing at the end
	crashes    int64
	recover    int64 // orphans successfully re-placed
	promotions int64 // backup promotions (replicated run only)
	events     uint64
	trace      []string
}

// chaosItem is one acked op's record (the durable source rebuilds from
// these).
type chaosItem struct {
	key   uint64
	val   int
	bytes int64
}

// runChaosOnce drives the workload, with or without the fault
// schedule. At rf >= 2 the stores are replicated through the
// lease/heartbeat plane and there is NO rebuilder: durability must come
// from replication alone, including through the false suspicion the
// 0-2 partition induces (the monitor on m0 confirms a perfectly
// healthy m2 dead; leases make the resulting promotion safe).
func runChaosOnce(cfg chaosCfg, inject bool, rf int) (chaosOutcome, error) {
	var out chaosOutcome
	sysCfg := core.DefaultConfig()
	sysCfg.Seed = seeded(11)
	sys := core.NewSystem(sysCfg, cfg.machines)
	defer sys.Close()
	sys.Start()

	var rm *core.ReplManager
	if rf >= 2 {
		rm = sys.EnableReplicationPlane(replication.Config{}, 0)
	}

	// The durable source: every acked put is recorded host-side, per
	// store, and replayed by the rebuilder when a store's machine dies.
	golden := make([]map[uint64]chaosItem, cfg.stores)
	for i := range golden {
		golden[i] = make(map[uint64]chaosItem)
	}
	stores := make([]*core.MemoryProclet, cfg.stores)
	byProclet := make(map[proclet.ID]int)
	for i := range stores {
		mid := cluster.MachineID(i % len(cfg.machines))
		mp, err := core.NewMemoryProcletOn(sys, fmt.Sprintf("store-%d", i), mid)
		if err != nil {
			return out, err
		}
		if rm != nil {
			if err := rm.Replicate(mp, rf); err != nil {
				return out, err
			}
		}
		stores[i] = mp
		byProclet[mp.ID()] = i
	}
	rebuilder := func(p *sim.Proc, mp *core.MemoryProclet) error {
		idx, ok := byProclet[mp.ID()]
		if !ok {
			return nil
		}
		items := make([]chaosItem, 0, len(golden[idx]))
		for _, it := range golden[idx] {
			items = append(items, it)
		}
		sort.Slice(items, func(i, j int) bool { return items[i].key < items[j].key })
		ids := make([]uint64, len(items))
		vals := make([]any, len(items))
		sizes := make([]int64, len(items))
		for i, it := range items {
			ids[i], vals[i], sizes[i] = it.key, it.val, it.bytes
		}
		return mp.PutBatch(p, 0, ids, vals, sizes)
	}
	if rm == nil {
		sys.SetRebuilder(rebuilder)
	}

	pool := make([]*core.ComputeProclet, cfg.pool)
	for i := range pool {
		mid := cluster.MachineID(i % len(cfg.machines))
		cp, err := core.NewComputeProcletOn(sys, fmt.Sprintf("chaos-cp-%d", i), mid, cfg.poolTh)
		if err != nil {
			return out, err
		}
		pool[i] = cp
	}

	var in *fault.Injector
	if inject {
		in = fault.New(sys.K, sys.Cluster, sys.Trace)
		sys.AttachInjector(in)
		sched, _, _ := chaosSchedule(cfg.horizon)
		in.Install(sched)
	}

	nBuckets := int(int64(cfg.horizon)/int64(cfg.bucket)) + 1
	out.goodput = make([]float64, nBuckets)

	var wg sim.WaitGroup
	for w := 0; w < cfg.clients; w++ {
		w := w
		wg.Add(1)
		sys.K.Spawn(fmt.Sprintf("chaos-client-%d", w), func(p *sim.Proc) {
			defer wg.Done()
			for op := 0; p.Now() < cfg.horizon; op++ {
				storeIdx := (w + op) % cfg.stores
				key := uint64(w)<<32 | uint64(op)
				val := w*1_000_003 + op
				taskDone := false
				var done sim.Cond
				pool[(w+op)%cfg.pool].Run(func(tc *core.TaskCtx) {
					tc.Compute(cfg.opCPU)
					err := stores[storeIdx].Put(tc.Proc(), tc.Machine(), key, val, cfg.opBytes)
					if err == nil {
						golden[storeIdx][key] = chaosItem{key: key, val: val, bytes: cfg.opBytes}
						out.ops++
						if b := int(int64(tc.Proc().Now()) / int64(cfg.bucket)); b < nBuckets {
							out.goodput[b]++
						}
					} else {
						out.failed++
					}
					taskDone = true
					done.Broadcast()
				})
				for !taskDone {
					done.Wait(p)
				}
			}
		})
	}

	var runErr error
	completed := false
	sys.K.Spawn("chaos-driver", func(p *sim.Proc) {
		wg.Wait(p)
		// Verify: every acked object must be readable after all faults
		// healed (crash-lost contents were rebuilt from the durable
		// source).
		for i, mp := range stores {
			keys := make([]uint64, 0, len(golden[i]))
			for k := range golden[i] {
				keys = append(keys, k)
			}
			sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
			for _, k := range keys {
				v, err := mp.Get(p, 0, k)
				if err != nil || v.(int) != golden[i][k].val {
					out.lost++
				}
			}
		}
		completed = true
		sys.K.Stop()
	})
	sys.K.Run()
	if runErr != nil {
		return out, runErr
	}
	if !completed {
		return out, fmt.Errorf("ext-chaos: run did not complete (workload wedged)")
	}
	out.events = sys.K.EventsProcessed()
	if in != nil {
		out.crashes = in.Crashes.Value()
		out.recover = sys.Sched.Recoveries.Value()
	}
	if rm != nil {
		out.promotions = rm.Promotions.Value()
	}
	for _, e := range sys.Trace.Events() {
		out.trace = append(out.trace, e.String())
	}
	return out, nil
}

// meanOver averages goodput buckets whose start time lies in [from, to).
func meanOver(g []float64, bucket time.Duration, from, to sim.Time) float64 {
	var sum float64
	n := 0
	for b := range g {
		start := sim.Time(int64(b) * int64(bucket))
		if start >= from && start < to {
			sum += g[b]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func runExtChaos(scale Scale) (*Result, error) {
	cfg := chaosConfig(scale)
	res := newResult("ext-chaos", "extension: goodput under injected crashes, partitions, and degraded links")
	_, firstFault, finalHeal := chaosSchedule(cfg.horizon)
	res.addf("setup: %d machines, %d stores, %d compute proclets x %d threads, %d closed-loop clients",
		len(cfg.machines), cfg.stores, cfg.pool, cfg.poolTh, cfg.clients)
	res.addf("faults: crash m1 @%v, partition 0-2 @%v, crash m2 + degrade 0-3 @%v; all healed by %v",
		firstFault, sim.Time(float64(cfg.horizon)*0.40), sim.Time(float64(cfg.horizon)*0.55), finalHeal)

	// Three independent simulations fanned across host cores: the chaos
	// run (rebuilder-backed, RF=1), the identically-seeded no-fault run,
	// and the same chaos schedule at RF=2 with NO rebuilder — acked
	// writes must survive on replicas alone.
	type variant struct {
		inject bool
		rf     int
	}
	variants := []variant{{true, 1}, {false, 1}, {true, 2}}
	outs, err := runpar.MapErr(len(variants), parallelism, func(i int) (chaosOutcome, error) {
		return runChaosOnce(cfg, variants[i].inject, variants[i].rf)
	})
	if err != nil {
		return nil, err
	}
	chaos, base, repl := outs[0], outs[1], outs[2]
	res.EventsProcessed = chaos.events + base.events + repl.events
	res.Trace = chaos.trace

	baseMean := meanOver(base.goodput, cfg.bucket, cfg.warmup, cfg.horizon)
	dip := meanOver(chaos.goodput, cfg.bucket, firstFault, finalHeal)
	for b := range chaos.goodput {
		start := sim.Time(int64(b) * int64(cfg.bucket))
		if start >= firstFault && start < finalHeal && chaos.goodput[b] < dip {
			dip = chaos.goodput[b]
		}
	}
	// Recovery: first bucket at/after the final heal that reaches the
	// tolerance threshold of the no-fault mean.
	recoveryMS := -1.0
	recoveredFrom := cfg.horizon
	for b := range chaos.goodput {
		start := sim.Time(int64(b) * int64(cfg.bucket))
		if start >= finalHeal && chaos.goodput[b] >= cfg.tolerance*baseMean {
			recoveryMS = float64(start-finalHeal) / float64(time.Millisecond)
			recoveredFrom = start
			break
		}
	}
	recoveredFrac := 0.0
	if baseMean > 0 {
		recoveredFrac = meanOver(chaos.goodput, cfg.bucket, recoveredFrom, cfg.horizon) /
			meanOver(base.goodput, cfg.bucket, recoveredFrom, cfg.horizon)
	}

	// Plot-ready series: goodput per bucket, chaos vs no-fault.
	for b := range chaos.goodput {
		res.SeriesTime = append(res.SeriesTime, float64(int64(b)*int64(cfg.bucket))/float64(time.Millisecond))
	}
	res.Series["goodput_chaos"] = chaos.goodput
	res.Series["goodput_nofault"] = base.goodput
	res.Series["goodput_repl"] = repl.goodput

	res.addf("%-22s %12s %12s %12s", "", "chaos", "no-fault", "chaos-rf2")
	res.addf("%-22s %12d %12d %12d", "ops acked", chaos.ops, base.ops, repl.ops)
	res.addf("%-22s %12d %12d %12d", "ops failed", chaos.failed, base.failed, repl.failed)
	res.addf("%-22s %12d %12d %12d", "objects lost", chaos.lost, base.lost, repl.lost)
	res.addf("crashes injected: %d, orphans re-placed: %d", chaos.crashes, chaos.recover)
	res.addf("rf2 run: no rebuilder; %d promotions covered the crashes and the false", repl.promotions)
	res.addf("suspicion from the 0-2 partition (leases keep the deposed primary silent).")
	res.addf("goodput: no-fault mean %.1f ops/bucket; worst fault-window bucket %.1f (%.0f%%)",
		baseMean, dip, 100*dip/baseMean)
	res.addf("recovery: %.1f ms after final heal to reach %.0f%% of no-fault goodput; tail at %.0f%%",
		recoveryMS, 100*cfg.tolerance, 100*recoveredFrac)
	res.addf("paper shape: granular re-placement + rebuild keeps the dip bounded and recovery fast;")
	res.addf("no acked object is lost and every invocation resolves (reply, timeout, or node-down).")

	res.set("ops", float64(chaos.ops))
	res.set("ops_nofault", float64(base.ops))
	res.set("failed", float64(chaos.failed))
	res.set("lost", float64(chaos.lost))
	res.set("crashes", float64(chaos.crashes))
	res.set("recoveries", float64(chaos.recover))
	res.set("dip_frac", dip/baseMean)
	res.set("recovery_ms", recoveryMS)
	res.set("recovered_frac", recoveredFrac)
	res.set("ops_repl", float64(repl.ops))
	res.set("failed_repl", float64(repl.failed))
	res.set("lost_repl", float64(repl.lost))
	res.set("promotions", float64(repl.promotions))
	return res, nil
}
