package experiments

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sharded"
	"repro/internal/sim"
	"repro/internal/workload"
)

// runExtHarvest generalizes Figure 1 to a fleet: N machines run
// high-priority apps with staggered phases, so at any instant a
// rotating subset of the fleet is idle. A fungible filler must chase
// capacity across all machines at once — the utility-computing vision
// the paper's introduction motivates.
func runExtHarvest(scale Scale) (*Result, error) {
	nMachines := 6
	cores := 8.0
	period := 24 * time.Millisecond
	horizon := sim.Time(1200 * time.Millisecond)
	measure := sim.Time(120 * time.Millisecond)
	if scale == TestScale {
		horizon = sim.Time(300 * time.Millisecond)
		measure = sim.Time(60 * time.Millisecond)
	}
	unit := 50 * time.Microsecond

	res := newResult("ext-harvest", "extension: filler harvests a 6-machine fleet with staggered idle phases")
	res.addf("setup: %d machines x %.0f cores; each runs a high-priority app busy 2/3 of a %v period,",
		nMachines, cores, period)
	res.addf("phases staggered so exactly 1/3 of the fleet (= %d machines) is idle at any instant",
		nMachines/3)

	run := func(fungible bool) (float64, int64, error) {
		machines := make([]cluster.MachineConfig, nMachines)
		for i := range machines {
			machines[i] = cluster.MachineConfig{Cores: cores, MemBytes: 16 << 30}
		}
		sys := core.NewSystem(core.DefaultConfig(), machines)
		defer sys.Close()
		// Staggered antagonists: machine i idle during the i-th third
		// of the period (busy the other two thirds).
		busy := period * 2 / 3
		for i, m := range sys.Cluster.Machines() {
			a := &workload.Antagonist{
				Machine: m, Period: period, Busy: busy,
				Offset: time.Duration(i%3) * period / 3, Cores: cores,
			}
			// Machines idle in slot (i%3)+... : offset shifts the busy
			// window; the idle window is the remaining third.
			a.Start(sys.K)
			_ = i
		}
		goodput := metrics.NewBucketSeries("goodput", time.Millisecond)
		var feed func(cp *core.ComputeProclet)
		feed = func(cp *core.ComputeProclet) {
			cp.Run(func(tc *core.TaskCtx) {
				tc.Compute(unit)
				goodput.Add(sys.K.Now(), 1)
				feed(tc.ComputeProclet())
			})
		}
		// Filler sized to the idle capacity: 2 machines' worth.
		members := int(2 * cores)
		if fungible {
			sys.Start()
			pool, err := sys.NewPool("filler", 1, members, 1, members)
			if err != nil {
				return 0, 0, err
			}
			for _, m := range pool.Members() {
				feed(m)
				feed(m)
			}
		} else {
			// Static: the filler rents machines 0 and 1 outright.
			for i := 0; i < members; i++ {
				cp, err := core.NewComputeProcletOn(sys, fmt.Sprintf("static-%d", i), cluster.MachineID(i%2), 1)
				if err != nil {
					return 0, 0, err
				}
				sys.Sched.Pin(cp.ID())
				feed(cp)
				feed(cp)
			}
		}
		sys.K.RunUntil(horizon)
		idealPerMs := 2 * cores * float64(time.Millisecond) / float64(unit)
		fromB := int(int64(measure) / int64(time.Millisecond))
		toB := int(int64(horizon) / int64(time.Millisecond))
		var achieved float64
		for b := fromB; b < toB; b++ {
			achieved += goodput.Bucket(b)
		}
		return 100 * achieved / (idealPerMs * float64(toB-fromB)), sys.Runtime.Migrations.Value(), nil
	}

	res.addf("%-10s %14s %12s", "mode", "goodput[%ideal]", "migrations")
	qs, qsMigs, err := run(true)
	if err != nil {
		return nil, err
	}
	res.addf("%-10s %14.1f %12d", "quicksand", qs, qsMigs)
	static, _, err := run(false)
	if err != nil {
		return nil, err
	}
	res.addf("%-10s %14.1f %12d", "static", static, 0)
	res.set("quicksand.goodput_pct", qs)
	res.set("static.goodput_pct", static)
	res.set("quicksand.migrations", float64(qsMigs))
	res.addf("shape: the fungible filler follows the idle third around the fleet; a static 2-machine")
	res.addf("rental only gets those machines' idle thirds (~33%% of ideal).")
	return res, nil
}

// runExtMemHarvest exercises the memory fast path dynamically: a
// high-priority tenant's resident set oscillates on one machine, and
// the sharded store must evacuate shards ahead of it and flow back
// after — memory harvesting in the style the paper's related work
// discusses, but without the "forcibly reclaimed, best-effort only"
// caveat, because shards migrate instead of being dropped.
func runExtMemHarvest(scale Scale) (*Result, error) {
	horizon := sim.Time(2 * time.Second)
	if scale == TestScale {
		horizon = sim.Time(800 * time.Millisecond)
	}
	res := newResult("ext-memharvest", "extension: sharded store surfs an oscillating high-priority tenant")

	sysCfg := core.DefaultConfig()
	sys := core.NewSystem(sysCfg, []cluster.MachineConfig{
		{Cores: 8, MemBytes: 2 << 30},
		{Cores: 8, MemBytes: 2 << 30},
	})
	defer sys.Close()
	sys.Start()
	v, err := sharded.NewVector[int](sys, "dataset", sharded.Options{MaxShardBytes: 64 << 20, AutoAdapt: true})
	if err != nil {
		return nil, err
	}

	// Tenant footprint: 1.5 GiB grabbed and released on machine 0
	// every 200 ms (alloc happens in slices to model ramp).
	const tenant = int64(1500 << 20)
	const slice = tenant / 10
	m0 := sys.Cluster.Machine(0)
	held := int64(0)
	grabbing := true
	loadDone := false
	sys.K.Every(0, 20*time.Millisecond, func() bool {
		if !loadDone {
			return sys.K.Now() < horizon
		}
		if grabbing {
			if m0.MemFree() >= slice && held < tenant {
				m0.AllocMem(slice)
				held += slice
			}
			if held >= tenant {
				grabbing = false
			}
		} else {
			if held > 0 {
				m0.FreeMem(slice)
				held -= slice
			}
			if held == 0 {
				grabbing = true
			}
		}
		return sys.K.Now() < horizon
	})

	readErrs, reads := 0, 0
	var loaded uint64
	sys.K.Spawn("driver", func(p *sim.Proc) {
		// Load 1.6 GiB while the tenant is low: placement spreads the
		// shards evenly, so ~0.8 GiB sits directly in the tenant's
		// path on machine 0 and must be evacuated when it ramps.
		for i := 0; i < 800; i++ {
			if err := v.PushBack(p, 0, i, 2<<20); err != nil {
				break
			}
			loaded++
		}
		loadDone = true
		// Continuous reads while the tenant oscillates.
		for p.Now() < horizon {
			for i := uint64(0); i < loaded; i += 37 {
				if _, err := v.Get(p, 1, i); err != nil {
					readErrs++
				}
				reads++
			}
			p.Sleep(10 * time.Millisecond)
		}
		sys.K.Stop()
	})
	sys.K.Run()

	evictions := sys.Sched.MemEvictions.Value()
	res.addf("loaded %d MiB across the cluster; tenant oscillates 0<->1.5 GiB on machine 0", loaded*2)
	res.addf("reads: %d (%d failed); shard evacuations: %d; migration mean %.2f ms",
		reads, readErrs, evictions, sys.Runtime.MigrationLatency.Mean()*1000)
	res.set("reads", float64(reads))
	res.set("read_errs", float64(readErrs))
	res.set("evictions", float64(evictions))
	res.set("loaded_mib", float64(loaded*2))
	res.addf("shape: unlike harvesting systems that drop best-effort state on reclaim, shards migrate")
	res.addf("ahead of the tenant and every read succeeds.")
	return res, nil
}
