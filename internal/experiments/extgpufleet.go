package experiments

// ext-gpufleet: a heterogeneous GPU fleet rides out gray failures.
// ext-gpu showed device-state migration beating restart-based recovery
// for clean spot reclaims; this extension drives the full robustness
// plane: XID-style fatal device errors recovered from host-RAM
// checkpoint mirrors, thermal throttling and ECC stutter absorbed by
// EWMA straggler detection with speculative re-dispatch to faster
// spares, and a spot reclaim evacuated over the readable grace window —
// all against a fixed-work makespan target so the cost of robustness is
// a single ratio against an undisturbed oracle run.

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/gpu"
	"repro/internal/obs/slo"
	"repro/internal/proclet"
	"repro/internal/runpar"
	"repro/internal/sim"
)

// gpufleetCfg parameterizes the GPU-fleet robustness experiment.
type gpufleetCfg struct {
	machines    int
	trainers    int
	modelBytes  int64
	stepKernel  time.Duration
	batchBytes  int64
	deltaBytes  int64 // per-step checkpoint ship
	snapEvery   int   // every Nth delta is a full snapshot
	targetSteps int64 // fixed work per trainer (makespan denominator)
	guard       sim.Time
}

func gpufleetConfig(scale Scale) gpufleetCfg {
	cfg := gpufleetCfg{
		machines:    3,
		trainers:    6,
		modelBytes:  64 << 20,
		stepKernel:  time.Millisecond,
		batchBytes:  1 << 20,
		deltaBytes:  256 << 10,
		snapEvery:   50,
		targetSteps: 400,
		guard:       sim.Time(8 * time.Second),
	}
	if scale == TestScale {
		cfg.targetSteps = 150
		cfg.guard = sim.Time(4 * time.Second)
	}
	return cfg
}

// gpufleetSchedule scripts the gray failures against the deterministic
// initial placement (trainer i sits on machine i/3, device i%3): a
// spot reclaim/return cycle under trainer 5, a fatal XID under
// trainer 0, a thermal throttle under trainer 3 that never heals, and
// an ECC stutter under trainer 4 that heals late. Machine 2's devices
// start empty and serve as the spare pool; the reclaim comes first so
// its grace window is evacuated while the watcher is otherwise idle.
func gpufleetSchedule() fault.Schedule {
	at := func(ms float64) sim.Time { return sim.Time(ms * 1e6) }
	return fault.Schedule{
		{At: at(25), Op: fault.OpGPUReclaim, A: 1, Gpu: 2},
		{At: at(40), Op: fault.OpGPUXid, A: 0, Gpu: 0, Xid: 79},
		{At: at(60), Op: fault.OpGPUThrottle, A: 1, Gpu: 0, Factor: 3},
		{At: at(60), Op: fault.OpGPUThrottle, A: 1, Gpu: 1,
			StallEvery: 3, Stall: 4 * time.Millisecond},
		{At: at(95), Op: fault.OpGPUReturn, A: 1, Gpu: 2},
		{At: at(160), Op: fault.OpGPUHeal, A: 1, Gpu: 1},
	}
}

// gpufleetOut is one variant's outcome.
type gpufleetOut struct {
	makespan    sim.Time // all trainers reached targetSteps
	steps       int64    // acked steps summed over trainers (>= target sum)
	lostSteps   int64    // acked steps redone after device loss
	restores    int64
	evacs       int64
	mitigations int64
	stranded    int64
	xids        int64
	sloWindows  int // step-latency SLO windows closed
	opened      int // incidents opened by the step-latency SLO
	resolved    int
	events      uint64
	trace       []string
}

// gpufleetSLO watches the fleet's per-step latency: 20ms windows, a
// ring of 2, paging when the windowed p999 blows past 6x the clean
// kernel time. The throttle phase trips it; the heal (or a straggler
// re-dispatch) resolves it — so the incident stream is the operator's
// view of the gray failure the detector never confirms.
func gpufleetSLO(cfg gpufleetCfg) *slo.Monitor {
	return slo.New(slo.Config{
		Window:  sim.Time(20 * time.Millisecond),
		Windows: 2,
		Rules: []slo.Rule{
			{Kind: slo.P999Above, BoundMS: 6 * float64(cfg.stepKernel) / float64(time.Millisecond),
				For: 1, Severity: "page"},
		},
		Subject: "gpufleet",
		Machine: -1,
	})
}

// runGPUFleetOnce drives cfg.trainers checkpointed trainers to the
// fixed step target. inject installs the gray-failure schedule; ckpt
// enables the per-step mirror; mitigate enables straggler re-dispatch.
func runGPUFleetOnce(cfg gpufleetCfg, inject, ckpt, mitigate bool) (gpufleetOut, error) {
	var out gpufleetOut
	machines := make([]cluster.MachineConfig, cfg.machines)
	for i := range machines {
		machines[i] = cluster.MachineConfig{Cores: 8, MemBytes: 16 << 30}
	}
	sysCfg := core.DefaultConfig()
	sysCfg.Seed = seeded(17)
	sys := core.NewSystem(sysCfg, machines)
	defer sys.Close()
	sys.Start()

	// Heterogeneous devices: machines 0 and 1 carry two a100-class and
	// one h100-class (2x kernel speed) device each, and trainers fill
	// them in placement order. Machine 2 is the spare pool — one a100
	// and two h100s, so restores land somewhere and stragglers have
	// strictly faster hardware to escape to.
	for i, m := range sys.Cluster.Machines() {
		a100s, h100s := 2, 1
		if i == cfg.machines-1 {
			a100s, h100s = 1, 2
		}
		m.AddGPUs(
			cluster.GPUConfig{Count: a100s, MemBytes: 2 << 30, LinkBandwidth: 16_000_000_000,
				Class: "a100", Speed: 1},
			cluster.GPUConfig{Count: h100s, MemBytes: 2 << 30, LinkBandwidth: 16_000_000_000,
				Class: "h100", Speed: 2},
		)
	}

	fcfg := gpu.Config{Period: time.Millisecond}
	if ckpt {
		fcfg.Checkpoint = gpu.CheckpointConfig{
			DeltaBytes:    cfg.deltaBytes,
			SnapshotEvery: cfg.snapEvery,
			Home:          gpu.AutoHome,
		}
	}
	if !mitigate {
		// Effectively disable the straggler detector: no EWMA will ever
		// exceed 1e6 x the fleet median.
		fcfg.StragglerFactor = 1e6
	}
	fleet := gpu.NewFleetConfig(sys, "gpufleet", fcfg)
	trainers := make([]*gpu.Proclet, cfg.trainers)
	for i := range trainers {
		gp, err := fleet.Add(fmt.Sprintf("trainer-%d", i), cfg.modelBytes, cfg.stepKernel)
		if err != nil {
			return out, err
		}
		trainers[i] = gp
	}
	fleet.Start()

	in := fault.New(sys.K, sys.Cluster, sys.Trace)
	in.HookGPU = func(cluster.MachineID, int) { fleet.Kick() }
	if inject {
		in.Install(gpufleetSchedule())
	}

	// The step-latency SLO monitor: host-side arithmetic over the same
	// step completions the drivers already see, fed in kernel schedule
	// order, so it is deterministic and costs no kernel events.
	mon := gpufleetSLO(cfg)
	mon.Log = sys.Trace

	var wg sim.WaitGroup
	for i, gp := range trainers {
		i, gp := i, gp
		wg.Add(1)
		sys.K.Spawn(fmt.Sprintf("driver-%d", i), func(p *sim.Proc) {
			defer wg.Done()
			// CompletedSteps can roll back on an uncheckpointed restore,
			// so the loop is over remaining work, not an iteration count.
			for gp.CompletedSteps() < cfg.targetSteps {
				before := p.Now()
				err := gp.Step(p, gp.Device().Machine.ID, cfg.batchBytes)
				mon.Observe(p.Now(), int64(p.Now()-before), err != nil)
				if err == nil {
					continue
				}
				if errors.Is(err, proclet.ErrDead) {
					return
				}
				if gp.AwaitPlaced(p) != nil {
					return
				}
			}
		})
	}

	completed := false
	sys.K.Spawn("gpufleet-driver", func(p *sim.Proc) {
		wg.Wait(p)
		out.makespan = p.Now()
		completed = true
		sys.K.Stop()
	})
	sys.K.RunUntil(cfg.guard)
	if !completed {
		return out, fmt.Errorf("ext-gpufleet: trainers did not finish %d steps by %v (fleet wedged)",
			cfg.targetSteps, cfg.guard)
	}
	fleet.Stop()

	for _, gp := range trainers {
		out.steps += gp.CompletedSteps()
	}
	mon.Finish(out.makespan)
	out.sloWindows = mon.WindowsClosed()
	out.opened = mon.Opened()
	out.resolved = mon.Resolved()
	out.lostSteps = fleet.LostSteps()
	out.restores = fleet.Restores.Value()
	out.evacs = fleet.Evacuations.Value()
	out.mitigations = fleet.Mitigations.Value()
	out.stranded = fleet.Stranded.Value()
	out.xids = in.GPUXids.Value()
	out.events = sys.K.EventsProcessed()
	for _, e := range sys.Trace.Events() {
		out.trace = append(out.trace, e.String())
	}
	return out, nil
}

func runExtGPUFleet(scale Scale) (*Result, error) {
	cfg := gpufleetConfig(scale)
	res := newResult("ext-gpufleet",
		"extension: heterogeneous GPU fleet under gray failures — checkpoints, stragglers, makespan")
	res.addf("setup: %d machines of mixed a100/h100 devices, %d trainers (model %d MiB, %v kernel), %d steps each",
		cfg.machines, cfg.trainers, cfg.modelBytes>>20, cfg.stepKernel, cfg.targetSteps)
	res.addf("checkpoints: %d KiB delta per step to an anti-affine host-RAM mirror, full snapshot every %d",
		cfg.deltaBytes>>10, cfg.snapEvery)
	res.addf("faults: spot reclaim m1/gpu2 @25ms (returns @95ms), XID m0/gpu0 @40ms, throttle x3")
	res.addf("m1/gpu0 @60ms (never heals), ECC stutter m1/gpu1 @60ms (heals @160ms); m2 is the spare pool")

	// Four variants fanned across host cores: the full robustness plane,
	// mitigation off (stragglers crawl), checkpoints off (XID loses all
	// acked work), and the undisturbed oracle the makespans are measured
	// against.
	type variant struct {
		name                   string
		inject, ckpt, mitigate bool
	}
	variants := []variant{
		{"robust", true, true, true},
		{"no-mitigation", true, true, false},
		{"no-checkpoint", true, false, true},
		{"oracle", false, false, false},
	}
	outs, err := runpar.MapErr(len(variants), parallelism, func(i int) (gpufleetOut, error) {
		v := variants[i]
		return runGPUFleetOnce(cfg, v.inject, v.ckpt, v.mitigate)
	})
	if err != nil {
		return nil, err
	}
	robust, nomit, nockpt, oracle := outs[0], outs[1], outs[2], outs[3]
	res.EventsProcessed = robust.events + nomit.events + nockpt.events + oracle.events
	res.Trace = robust.trace

	ms := func(t sim.Time) float64 { return float64(t) / 1e6 }
	res.addf("%-15s %13s %9s %10s %9s %6s %11s %10s", "variant",
		"makespan[ms]", "steps", "lost-steps", "restores", "evacs", "mitigations", "stranded")
	for i, o := range outs {
		res.addf("%-15s %13.1f %9d %10d %9d %6d %11d %10d",
			variants[i].name, ms(o.makespan), o.steps, o.lostSteps,
			o.restores, o.evacs, o.mitigations, o.stranded)
	}
	ratio := ms(robust.makespan) / ms(oracle.makespan)
	res.addf("makespan ratio robust/oracle: %.3f — the full robustness tax (checkpoint shipping +", ratio)
	res.addf("fault disruption) on top of an undisturbed heterogeneous run; no acked step is lost.")
	res.addf("no-mitigation pays %.1f%% over robust (stragglers crawl at the throttled rate);",
		100*(ms(nomit.makespan)/ms(robust.makespan)-1))
	res.addf("no-checkpoint redoes %d acked steps after the XID.", nockpt.lostSteps)
	res.addf("step-latency slo (robust): %d windows, %d incidents opened, %d resolved; no-mitigation: %d opened, %d resolved",
		robust.sloWindows, robust.opened, robust.resolved, nomit.opened, nomit.resolved)

	res.set("makespan_ms_robust", ms(robust.makespan))
	res.set("makespan_ms_nomit", ms(nomit.makespan))
	res.set("makespan_ms_nockpt", ms(nockpt.makespan))
	res.set("makespan_ms_oracle", ms(oracle.makespan))
	res.set("makespan_ratio", ratio)
	res.set("steps", float64(robust.steps))
	// Durability gate: with checkpoints on, an acked step is never lost.
	res.set("lost_steps", float64(robust.lostSteps))
	// Contrast value, intentionally nonzero — named outside the gated
	// "lost" prefix so benchdiff does not bind it.
	res.set("nockpt_lost_steps", float64(nockpt.lostSteps))
	res.set("restores", float64(robust.restores))
	res.set("evacuations", float64(robust.evacs))
	res.set("mitigations", float64(robust.mitigations))
	res.set("stranded", float64(robust.stranded))
	res.set("xids", float64(robust.xids))
	res.set("slo_windows", float64(robust.sloWindows))
	res.set("incidents_opened", float64(robust.opened))
	res.set("incidents_resolved", float64(robust.resolved))
	res.set("nomit_incidents_opened", float64(nomit.opened))
	return res, nil
}
