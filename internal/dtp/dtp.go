// Package dtp provides Quicksand's distributed thread pool (§3.2): a
// compute abstraction whose threads are sharded across compute
// proclets, with familiar parallel APIs (ForEach, Map, Reduce) that
// compose memory and compute proclets — for example, mapping a
// function over a sharded vector's elements with iterator prefetch.
//
// The pool is elastic: a RateMatcher policy splits producer compute
// proclets when the downstream consumer is starving and merges them
// when production outruns consumption (§3.3, §4).
package dtp

import (
	"time"

	"repro/internal/core"
	"repro/internal/sharded"
	"repro/internal/sim"
)

// ThreadPool is a distributed thread pool over an elastic group of
// compute proclets.
type ThreadPool struct {
	sys  *core.System
	pool *core.Pool
}

// New creates a thread pool with `initial` compute proclets of
// workersPer threads each; the pool may adapt between minSize and
// maxSize members (maxSize <= 0 means unbounded).
func New(sys *core.System, name string, workersPer, initial, minSize, maxSize int) (*ThreadPool, error) {
	pool, err := sys.NewPool(name, workersPer, initial, minSize, maxSize)
	if err != nil {
		return nil, err
	}
	return &ThreadPool{sys: sys, pool: pool}, nil
}

// Pool exposes the underlying elastic pool.
func (tp *ThreadPool) Pool() *core.Pool { return tp.pool }

// Size returns the current compute proclet count.
func (tp *ThreadPool) Size() int { return tp.pool.Size() }

// Parallelism returns total worker threads across members.
func (tp *ThreadPool) Parallelism() int {
	n := 0
	for _, m := range tp.pool.Members() {
		n += m.Workers()
	}
	return n
}

// Run submits one task.
func (tp *ThreadPool) Run(fn core.TaskFn) { tp.pool.Run(fn) }

// WaitIdle blocks until all members are idle.
func (tp *ThreadPool) WaitIdle(p *sim.Proc) { tp.pool.WaitIdle(p) }

// ForEachVec applies fn to every element of a sharded vector, fanning
// out over the pool in chunks of `chunk` elements. Each chunk iterates
// with prefetch (batch size = chunk, capped at 64), so remote shards
// stream in behind the computation. Blocks until all elements are
// processed; the first error (if any) is returned.
func ForEachVec[T any](p *sim.Proc, tp *ThreadPool, v *sharded.Vector[T], chunk int,
	fn func(tc *core.TaskCtx, idx uint64, val T)) error {
	if chunk < 1 {
		chunk = 1
	}
	batch := chunk
	if batch > 64 {
		batch = 64
	}
	n := v.Len()
	var wg sim.WaitGroup
	var firstErr error
	for lo := uint64(0); lo < n; lo += uint64(chunk) {
		lo := lo
		hi := lo + uint64(chunk)
		if hi > n {
			hi = n
		}
		wg.Add(1)
		tp.Run(func(tc *core.TaskCtx) {
			defer wg.Done()
			it := v.IterRange(lo, hi, batch)
			for i := lo; i < hi; i++ {
				val, ok, err := it.Next(tc.Proc(), tc.Machine())
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
					return
				}
				if !ok {
					return
				}
				fn(tc, i, val)
			}
		})
	}
	wg.Wait(p)
	return firstErr
}

// MapVec applies fn to every element and collects the results in
// element order.
func MapVec[T, R any](p *sim.Proc, tp *ThreadPool, v *sharded.Vector[T], chunk int,
	fn func(tc *core.TaskCtx, idx uint64, val T) R) ([]R, error) {
	out := make([]R, v.Len())
	err := ForEachVec(p, tp, v, chunk, func(tc *core.TaskCtx, idx uint64, val T) {
		out[idx] = fn(tc, idx, val)
	})
	return out, err
}

// FilterVec returns, in element order, the elements for which pred
// holds, evaluated in parallel across the pool.
func FilterVec[T any](p *sim.Proc, tp *ThreadPool, v *sharded.Vector[T], chunk int,
	pred func(tc *core.TaskCtx, idx uint64, val T) bool) ([]T, error) {
	keep := make([]bool, v.Len())
	vals := make([]T, v.Len())
	err := ForEachVec(p, tp, v, chunk, func(tc *core.TaskCtx, idx uint64, val T) {
		if pred(tc, idx, val) {
			keep[idx] = true
			vals[idx] = val
		}
	})
	if err != nil {
		return nil, err
	}
	out := vals[:0]
	for i, k := range keep {
		if k {
			out = append(out, vals[i])
		}
	}
	return out, nil
}

// ReduceVec maps every element through fn and folds the results with
// the associative combine function, starting from zero.
func ReduceVec[T, R any](p *sim.Proc, tp *ThreadPool, v *sharded.Vector[T], chunk int,
	fn func(tc *core.TaskCtx, val T) R, combine func(R, R) R, zero R) (R, error) {
	partials, err := MapVec(p, tp, v, chunk, func(tc *core.TaskCtx, _ uint64, val T) R {
		return fn(tc, val)
	})
	acc := zero
	for _, r := range partials {
		acc = combine(acc, r)
	}
	return acc, err
}

// TargetScaler drives a pool toward an externally computed size — the
// paper's Figure 3 controller, which splits or merges preprocessing
// compute proclets "after learning of a change in GPU resources": the
// target is derived from the consumer's current capacity (for example
// activeGPUs x preprocessCost/gpuCost). Register with the scheduler's
// adaptation loop.
type TargetScaler struct {
	tp *ThreadPool
	// Target computes the desired pool size.
	Target func() int
	// MaxSteps bounds grow/shrink actions per tick (0 means 1).
	MaxSteps int

	// Grows and Shrinks count actions taken.
	Grows   int64
	Shrinks int64
}

// NewTargetScaler wires a target scaler for tp.
func NewTargetScaler(tp *ThreadPool, target func() int) *TargetScaler {
	return &TargetScaler{tp: tp, Target: target, MaxSteps: 2}
}

// Adapt implements core.Adaptive.
func (ts *TargetScaler) Adapt(p *sim.Proc) {
	steps := ts.MaxSteps
	if steps < 1 {
		steps = 1
	}
	for i := 0; i < steps; i++ {
		want := ts.Target()
		cur := ts.tp.Size()
		switch {
		case cur < want:
			grew, _ := ts.tp.pool.Grow(p)
			if !grew {
				return
			}
			ts.Grows++
		case cur > want:
			shrank, _ := ts.tp.pool.Shrink(p)
			if !shrank {
				return
			}
			ts.Shrinks++
		default:
			return
		}
	}
}

// RateMatcher adapts a producer pool to its consumer's pace using the
// downstream queue depth as the signal: a starving consumer (shallow
// queue) grows the producer side; a deep backlog shrinks it. It needs
// no knowledge of the consumer's capacity, at the cost of slower
// convergence than TargetScaler when rates are closely matched.
// Register with the scheduler's adaptation loop.
type RateMatcher struct {
	tp *ThreadPool
	// Depth reports the downstream buffer occupancy.
	Depth func() uint64
	// LowWater: grow producers when depth falls below this.
	LowWater uint64
	// HighWater: shrink producers when depth exceeds this.
	HighWater uint64
	// Cooldown is the minimum time between actions in the same
	// direction (prevents thrash). Zero allows acting every tick.
	Cooldown time.Duration
	// MaxSteps bounds how many grow/shrink actions one tick may take
	// (0 means 1). Larger steps converge faster after big consumer
	// swings at the cost of occasional overshoot.
	MaxSteps int

	lastGrow   sim.Time
	lastShrink sim.Time
	// Grows and Shrinks count actions taken.
	Grows   int64
	Shrinks int64
}

// NewRateMatcher wires a rate matcher for tp driven by depth.
func NewRateMatcher(tp *ThreadPool, depth func() uint64, low, high uint64, cooldown time.Duration) *RateMatcher {
	return &RateMatcher{tp: tp, Depth: depth, LowWater: low, HighWater: high, Cooldown: cooldown}
}

// Adapt implements core.Adaptive.
func (rm *RateMatcher) Adapt(p *sim.Proc) {
	steps := rm.MaxSteps
	if steps < 1 {
		steps = 1
	}
	for i := 0; i < steps; i++ {
		now := p.Now()
		switch d := rm.Depth(); {
		case d < rm.LowWater:
			if rm.lastGrow != 0 && now.Sub(rm.lastGrow) < rm.Cooldown {
				return
			}
			grew, _ := rm.tp.pool.Grow(p)
			if !grew {
				return
			}
			rm.Grows++
			rm.lastGrow = now
		case d > rm.HighWater:
			if rm.lastShrink != 0 && now.Sub(rm.lastShrink) < rm.Cooldown {
				return
			}
			shrank, _ := rm.tp.pool.Shrink(p)
			if !shrank {
				return
			}
			rm.Shrinks++
			rm.lastShrink = now
		default:
			return
		}
	}
}
