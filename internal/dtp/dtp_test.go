package dtp

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/sharded"
	"repro/internal/sim"
)

func testSys(t *testing.T) *core.System {
	t.Helper()
	return core.NewSystem(core.DefaultConfig(), []cluster.MachineConfig{
		{Cores: 8, MemBytes: 1 << 30},
		{Cores: 8, MemBytes: 1 << 30},
	})
}

func TestForEachVecVisitsAll(t *testing.T) {
	s := testSys(t)
	tp, err := New(s, "tp", 2, 2, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := sharded.NewVector[int](s, "vec", sharded.Options{MaxShardBytes: 16 << 10})
	s.K.Spawn("driver", func(p *sim.Proc) {
		for i := 0; i < 100; i++ {
			v.PushBack(p, 0, i, 256)
		}
		seen := make([]bool, 100)
		err := ForEachVec(p, tp, v, 10, func(tc *core.TaskCtx, idx uint64, val int) {
			tc.Compute(50 * time.Microsecond)
			if val != int(idx) {
				t.Errorf("element %d = %d", idx, val)
			}
			seen[idx] = true
		})
		if err != nil {
			t.Fatalf("ForEachVec: %v", err)
		}
		for i, ok := range seen {
			if !ok {
				t.Errorf("element %d not visited", i)
			}
		}
	})
	s.K.Run()
}

func TestForEachVecParallelSpeedup(t *testing.T) {
	// 64 elements x 1ms compute on 8 cores should take ~8ms, not 64ms.
	s := testSys(t)
	tp, _ := New(s, "tp", 4, 2, 1, 0)
	v, _ := sharded.NewVector[int](s, "vec", sharded.Options{MaxShardBytes: 1 << 20})
	var elapsed time.Duration
	s.K.Spawn("driver", func(p *sim.Proc) {
		for i := 0; i < 64; i++ {
			v.PushBack(p, 0, i, 64)
		}
		start := p.Now()
		ForEachVec(p, tp, v, 8, func(tc *core.TaskCtx, idx uint64, val int) {
			tc.Compute(time.Millisecond)
		})
		elapsed = p.Now().Sub(start)
	})
	s.K.Run()
	if elapsed > 15*time.Millisecond {
		t.Errorf("ForEachVec took %v, want ~8ms with 8-way parallelism", elapsed)
	}
	if elapsed < 8*time.Millisecond {
		t.Errorf("ForEachVec took %v, faster than physically possible", elapsed)
	}
}

func TestMapVecOrder(t *testing.T) {
	s := testSys(t)
	tp, _ := New(s, "tp", 2, 2, 1, 0)
	v, _ := sharded.NewVector[int](s, "vec", sharded.Options{MaxShardBytes: 8 << 10})
	s.K.Spawn("driver", func(p *sim.Proc) {
		for i := 0; i < 30; i++ {
			v.PushBack(p, 0, i, 128)
		}
		out, err := MapVec(p, tp, v, 7, func(tc *core.TaskCtx, idx uint64, val int) int {
			tc.Compute(10 * time.Microsecond)
			return val * val
		})
		if err != nil {
			t.Fatalf("MapVec: %v", err)
		}
		for i, r := range out {
			if r != i*i {
				t.Errorf("out[%d] = %d, want %d", i, r, i*i)
			}
		}
	})
	s.K.Run()
}

func TestReduceVec(t *testing.T) {
	s := testSys(t)
	tp, _ := New(s, "tp", 2, 2, 1, 0)
	v, _ := sharded.NewVector[int](s, "vec", sharded.Options{MaxShardBytes: 8 << 10})
	s.K.Spawn("driver", func(p *sim.Proc) {
		want := 0
		for i := 1; i <= 50; i++ {
			v.PushBack(p, 0, i, 64)
			want += i
		}
		got, err := ReduceVec(p, tp, v, 10,
			func(tc *core.TaskCtx, val int) int { return val },
			func(a, b int) int { return a + b }, 0)
		if err != nil {
			t.Fatalf("ReduceVec: %v", err)
		}
		if got != want {
			t.Errorf("sum = %d, want %d", got, want)
		}
	})
	s.K.Run()
}

func TestRateMatcherGrowsWhenStarved(t *testing.T) {
	s := testSys(t)
	tp, _ := New(s, "producers", 1, 2, 1, 8)
	depth := uint64(0)
	rm := NewRateMatcher(tp, func() uint64 { return depth }, 4, 32, 0)
	s.Sched.RegisterAdaptive(rm)
	s.Start()
	// Keep members busy so Grow targets real queues.
	var feed func(cp *core.ComputeProclet)
	feed = func(cp *core.ComputeProclet) {
		cp.Run(func(tc *core.TaskCtx) {
			tc.Compute(200 * time.Microsecond)
			feed(tc.ComputeProclet())
		})
	}
	for _, m := range tp.Pool().Members() {
		feed(m)
		feed(m)
	}
	s.K.RunUntil(20 * sim.Millisecond)
	if tp.Size() <= 2 || rm.Grows == 0 {
		t.Errorf("size=%d grows=%d, want growth under starvation", tp.Size(), rm.Grows)
	}
	// Now a deep backlog: the matcher must shrink.
	depth = 100
	s.K.RunUntil(60 * sim.Millisecond)
	if rm.Shrinks == 0 {
		t.Errorf("no shrinks under backlog (size=%d)", tp.Size())
	}
}

func TestRateMatcherCooldown(t *testing.T) {
	s := testSys(t)
	tp, _ := New(s, "producers", 1, 1, 1, 16)
	rm := NewRateMatcher(tp, func() uint64 { return 0 }, 4, 32, 10*time.Millisecond)
	s.Sched.RegisterAdaptive(rm)
	s.Start()
	s.K.RunUntil(21 * sim.Millisecond)
	// AdaptPeriod 2ms for 21ms = ~10 ticks, but cooldown 10ms allows
	// only ~2-3 grows.
	if rm.Grows > 3 {
		t.Errorf("Grows = %d with 10ms cooldown over 21ms", rm.Grows)
	}
	if rm.Grows == 0 {
		t.Error("cooldown blocked all growth")
	}
}

func TestFilterVec(t *testing.T) {
	s := testSys(t)
	tp, _ := New(s, "tp", 2, 2, 1, 0)
	v, _ := sharded.NewVector[int](s, "vec", sharded.Options{MaxShardBytes: 8 << 10})
	s.K.Spawn("driver", func(p *sim.Proc) {
		for i := 0; i < 50; i++ {
			v.PushBack(p, 0, i, 64)
		}
		out, err := FilterVec(p, tp, v, 10, func(tc *core.TaskCtx, idx uint64, val int) bool {
			tc.Compute(10 * time.Microsecond)
			return val%3 == 0
		})
		if err != nil {
			t.Fatalf("FilterVec: %v", err)
		}
		want := 0
		for _, val := range out {
			if val != want {
				t.Fatalf("out = %v (order or content wrong at %d)", out, val)
			}
			want += 3
		}
		if len(out) != 17 {
			t.Errorf("len = %d, want 17", len(out))
		}
	})
	s.K.Run()
}

func TestTargetScalerTracksTarget(t *testing.T) {
	s := testSys(t)
	tp, _ := New(s, "producers", 1, 4, 1, 16)
	target := 4
	ts := NewTargetScaler(tp, func() int { return target })
	ts.MaxSteps = 2
	s.Sched.RegisterAdaptive(ts)
	s.Start()
	if tp.Parallelism() != 4 {
		t.Errorf("Parallelism = %d, want 4", tp.Parallelism())
	}
	// Keep members fed so splits have queues to divide.
	var produce core.TaskFn
	produce = func(tc *core.TaskCtx) {
		tc.Compute(100 * time.Microsecond)
		tc.ComputeProclet().Run(produce)
	}
	for i := 0; i < 32; i++ {
		tp.Run(produce)
	}
	s.K.RunUntil(5 * sim.Millisecond)
	target = 10
	s.K.RunUntil(30 * sim.Millisecond)
	if tp.Size() != 10 {
		t.Errorf("Size = %d after grow target, want 10", tp.Size())
	}
	if ts.Grows == 0 {
		t.Error("no grows recorded")
	}
	target = 3
	s.K.RunUntil(60 * sim.Millisecond)
	if tp.Size() != 3 {
		t.Errorf("Size = %d after shrink target, want 3", tp.Size())
	}
	if ts.Shrinks == 0 {
		t.Error("no shrinks recorded")
	}
}

func TestThreadPoolWaitIdle(t *testing.T) {
	s := testSys(t)
	tp, _ := New(s, "tp", 1, 2, 1, 0)
	ran := 0
	for i := 0; i < 4; i++ {
		tp.Run(func(tc *core.TaskCtx) {
			tc.Compute(time.Millisecond)
			ran++
		})
	}
	s.K.Spawn("w", func(p *sim.Proc) {
		tp.WaitIdle(p)
		if ran != 4 {
			t.Errorf("WaitIdle returned with %d/4 done", ran)
		}
	})
	s.K.Run()
}
