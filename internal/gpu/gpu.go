// Package gpu implements GPU resource proclets — the proclet type the
// paper motivates but had "not yet implemented" (§4), answering §5's
// question of how to keep fine-grained resource units productive on
// unreliable, reclaimable accelerators.
//
// A GPU proclet owns a model replica resident in device memory and
// exposes a training-step method: upload a batch over the host link,
// execute a kernel, and — when checkpointing is on — ship the step's
// optimizer delta to a host-RAM mirror before acknowledging, so an
// acked step is never lost. Migration moves the device state to
// another GPU while new steps block and in-flight steps drain,
// mirroring the Nu migration protocol at the device level; restore
// rebuilds a proclet whose device died fatally (XID) from the mirror
// instead, losing at most the one unacked in-flight step.
//
// A Fleet watches the devices — spot reclaims, XID-style fatal errors,
// and gray degradation (thermal throttle, ECC stutter) — and reacts:
// evacuation for readable reclaimed devices, checkpoint re-placement
// for dead ones, and straggler mitigation driven by per-proclet
// step-latency EWMAs compared against the fleet median.
package gpu

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/proclet"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/trace"
)

// Errors returned by GPU proclet operations.
var (
	ErrReclaimed    = errors.New("gpu: device reclaimed")
	ErrDeviceFailed = errors.New("gpu: fatal device error")
	ErrNoSpare      = errors.New("gpu: no available GPU with room")
)

// methodStep is the training-step method on the host-side proclet.
const methodStep = "gpu.step"

// controlHeap is the host-RAM footprint of a GPU proclet's control
// state (input pipeline buffers, launch queues).
const controlHeap = 1 << 20

// ewmaAlpha smooths the per-proclet step-latency and queue-delay
// averages the straggler detector consumes.
const ewmaAlpha = 0.25

// AutoHome asks the checkpoint plane to pick the mirror machine:
// the lowest-ID machine different from the device's (anti-affine),
// falling back to the device's own host RAM on one-machine clusters
// (which still survives a device XID, just not a machine crash).
const AutoHome cluster.MachineID = -1

// CheckpointConfig describes a proclet's training-state checkpoints.
// The protocol follows the replication plane's group-commit shipping
// discipline (core.ReplManager): state reaches the mirror before the
// step is acknowledged, so acknowledged work survives device loss.
type CheckpointConfig struct {
	// DeltaBytes is the optimizer delta shipped synchronously after
	// every step (device → host → mirror machine). 0 disables
	// checkpointing entirely.
	DeltaBytes int64
	// SnapshotEvery replaces every Nth delta with a full model
	// snapshot, bounding mirror divergence from accumulated deltas
	// (0 = deltas only).
	SnapshotEvery int
	// Home is the machine holding the host-RAM mirror; AutoHome picks
	// anti-affine to the initial device.
	Home cluster.MachineID
}

// Enabled reports whether checkpoints are on.
func (c CheckpointConfig) Enabled() bool { return c.DeltaBytes > 0 }

// Proclet is a GPU resource proclet: model state in device memory plus
// a host-side control proclet on the device's machine.
type Proclet struct {
	sys  *core.System
	pr   *proclet.Proclet
	gpu  *cluster.GPU
	name string

	modelBytes int64
	stepKernel time.Duration

	ckpt      CheckpointConfig
	ckptHome  cluster.MachineID
	acked     int64 // training steps acknowledged to the driver
	ckptStep  int64 // highest step covered by the mirror
	sinceSnap int

	migrating bool
	active    int
	drained   sim.Cond
	unblocked sim.Cond
	dead      bool

	// Straggler telemetry: smoothed per-step latency and device queue
	// delay, in milliseconds. Reset when the proclet changes device.
	stepMS   *metrics.EWMA
	qdelayMS *metrics.EWMA

	// Steps counts acknowledged training steps (cumulative, never
	// rolled back); Checkpoints counts mirror ships; LostSteps counts
	// acknowledged steps that had to be redone after a device loss —
	// always zero while checkpointing is enabled.
	Steps       metrics.Counter
	Checkpoints metrics.Counter
	LostSteps   metrics.Counter
}

// New creates a GPU proclet on device g with modelBytes of device
// state and no checkpointing; each training step costs stepKernel of
// device time plus the batch upload.
func New(sys *core.System, name string, g *cluster.GPU, modelBytes int64, stepKernel time.Duration) (*Proclet, error) {
	return NewCheckpointed(sys, name, g, modelBytes, stepKernel, CheckpointConfig{})
}

// NewCheckpointed creates a GPU proclet whose training state is
// mirrored per ck.
func NewCheckpointed(sys *core.System, name string, g *cluster.GPU, modelBytes int64, stepKernel time.Duration, ck CheckpointConfig) (*Proclet, error) {
	if !g.Healthy() {
		return nil, deviceErr(g)
	}
	if err := g.AllocMem(modelBytes); err != nil {
		return nil, err
	}
	pr, err := sys.Runtime.Spawn(name, g.Machine.ID, controlHeap)
	if err != nil {
		g.FreeMem(modelBytes)
		return nil, err
	}
	gp := &Proclet{
		sys:        sys,
		pr:         pr,
		gpu:        g,
		name:       name,
		modelBytes: modelBytes,
		stepKernel: stepKernel,
		ckpt:       ck,
		stepMS:     metrics.NewEWMA(ewmaAlpha),
		qdelayMS:   metrics.NewEWMA(ewmaAlpha),
	}
	if ck.Enabled() {
		gp.ckptHome = ck.Home
		if gp.ckptHome == AutoHome {
			gp.ckptHome = g.Machine.ID
			for _, m := range sys.Cluster.Machines() {
				if m.ID != g.Machine.ID {
					gp.ckptHome = m.ID
					break
				}
			}
		}
	}
	pr.Data = gp
	sys.Sched.RegisterProclet(pr, core.KindOther)
	sys.Sched.Pin(pr.ID()) // device affinity: only the Fleet moves it
	pr.Handle(methodStep, gp.step)
	return gp, nil
}

func deviceErr(g *cluster.GPU) error {
	if g.Failed() {
		return fmt.Errorf("%w: %s xid %d", ErrDeviceFailed, g, g.Xid())
	}
	return fmt.Errorf("%w: %s", ErrReclaimed, g)
}

// step is the gpu.step method body. It must not block on migration
// completion: the migration protocol drains the control proclet's
// invocations, so waiting here would deadlock. Instead a migrating
// proclet rejects the step with ErrMigrating and the public Step
// wrapper retries from outside the invocation.
func (gp *Proclet) step(ctx *proclet.Ctx, arg proclet.Msg) (proclet.Msg, error) {
	if gp.migrating {
		return proclet.Msg{}, proclet.ErrMigrating
	}
	if gp.dead {
		return proclet.Msg{}, proclet.ErrDead
	}
	g := gp.gpu
	if !g.Healthy() {
		return proclet.Msg{}, deviceErr(g)
	}
	gp.active++
	start := ctx.Proc.Now()
	batchBytes, _ := arg.Payload.(int64)
	qwait := g.Upload(ctx.Proc, batchBytes)
	qwait += g.ExecKernel(ctx.Proc, gp.stepKernel)
	// The device may have died or been reclaimed while the kernel ran:
	// the step is not acknowledged and not checkpointed — the driver
	// retries it after re-placement. This is the "at most one step"
	// loss window.
	if gp.dead || !g.Healthy() {
		gp.finish()
		return proclet.Msg{}, deviceErr(g)
	}
	if gp.ckpt.Enabled() {
		if err := gp.shipCheckpoint(ctx.Proc, g); err != nil {
			gp.finish()
			return proclet.Msg{}, err
		}
	}
	gp.acked++
	gp.Steps.Inc()
	gp.stepMS.Observe(float64(ctx.Proc.Now().Sub(start)) / float64(time.Millisecond))
	gp.qdelayMS.Observe(float64(qwait) / float64(time.Millisecond))
	gp.finish()
	return proclet.Msg{}, nil
}

// shipCheckpoint moves the step's state change to the mirror before
// the ack: the delta (or a periodic full snapshot) crosses the host
// link, then the network when the mirror is anti-affine.
func (gp *Proclet) shipCheckpoint(p *sim.Proc, g *cluster.GPU) error {
	ship := gp.ckpt.DeltaBytes
	gp.sinceSnap++
	if gp.ckpt.SnapshotEvery > 0 && gp.sinceSnap >= gp.ckpt.SnapshotEvery {
		ship = gp.modelBytes
		gp.sinceSnap = 0
	}
	g.Download(p, ship)
	if gp.ckptHome != g.Machine.ID {
		if err := gp.sys.Cluster.Fabric.Transfer(p,
			simnet.NodeID(g.Machine.ID), simnet.NodeID(gp.ckptHome), ship); err != nil {
			return err
		}
	}
	if gp.dead || !g.Healthy() {
		return deviceErr(g)
	}
	gp.ckptStep = gp.acked + 1
	gp.Checkpoints.Inc()
	return nil
}

func (gp *Proclet) finish() {
	gp.active--
	if gp.active == 0 {
		gp.drained.Broadcast()
	}
}

// Name returns the proclet's name.
func (gp *Proclet) Name() string { return gp.name }

// ProcletID returns the host-side proclet's ID.
func (gp *Proclet) ProcletID() proclet.ID { return gp.pr.ID() }

// Device returns the GPU currently hosting the model.
func (gp *Proclet) Device() *cluster.GPU { return gp.gpu }

// ModelBytes returns the device-resident state size.
func (gp *Proclet) ModelBytes() int64 { return gp.modelBytes }

// CompletedSteps returns the driver-visible training progress: acked
// steps, rolled back only when an unmirrored model is lost.
func (gp *Proclet) CompletedSteps() int64 { return gp.acked }

// CheckpointedStep returns the highest step covered by the mirror.
func (gp *Proclet) CheckpointedStep() int64 { return gp.ckptStep }

// CheckpointHome returns the mirror machine (meaningful only when
// checkpointing is enabled).
func (gp *Proclet) CheckpointHome() cluster.MachineID { return gp.ckptHome }

// StepLatencyMS returns the smoothed per-step latency in milliseconds.
func (gp *Proclet) StepLatencyMS() float64 { return gp.stepMS.Value() }

// QueueDelayMS returns the smoothed device queue delay in milliseconds.
func (gp *Proclet) QueueDelayMS() float64 { return gp.qdelayMS.Value() }

// StepSamples returns how many steps have fed the latency average
// since the proclet last changed device.
func (gp *Proclet) StepSamples() int64 { return gp.stepMS.Count() }

func (gp *Proclet) resetTelemetry() {
	gp.stepMS.Reset()
	gp.qdelayMS.Reset()
}

// Step performs one training step from the caller's machine: the batch
// travels to the proclet's machine (network), then to the device
// (host link), then the kernel runs. Steps that land mid-migration
// wait (outside the invocation) for the move to finish and retry;
// device failures surface to the caller (see AwaitPlaced).
func (gp *Proclet) Step(p *sim.Proc, from cluster.MachineID, batchBytes int64) error {
	for {
		if gp.migrating {
			// Wait for the in-progress device move, then re-route (the
			// control proclet may now live on another machine).
			gp.unblocked.Wait(p)
			continue
		}
		_, err := gp.sys.Runtime.Invoke(p, from, 0, gp.pr.ID(), methodStep,
			proclet.Msg{Payload: batchBytes, Bytes: batchBytes})
		if errors.Is(err, proclet.ErrMigrating) {
			continue
		}
		return err
	}
}

// AwaitPlaced blocks until the proclet sits on a healthy device with
// no migration in flight (or is destroyed). Drivers call this after a
// Step fails with a device error, then retry: the Fleet's re-placement
// broadcasts the wakeup.
func (gp *Proclet) AwaitPlaced(p *sim.Proc) error {
	for {
		if gp.dead {
			return proclet.ErrDead
		}
		if !gp.migrating && gp.gpu.Healthy() {
			return nil
		}
		gp.unblocked.Wait(p)
	}
}

// MigrateTo moves the model replica to another GPU by reading it back
// from the current device: block new steps, drain in-flight ones, copy
// device state (host link down, network if cross-machine, host link
// up), move the control proclet if the machine changed, and resume.
// The source must be readable — reclaimed is fine (providers keep the
// memory addressable for a grace window), fatally failed is not: a
// Failed source requires RestoreTo.
func (gp *Proclet) MigrateTo(p *sim.Proc, dst *cluster.GPU) error {
	if gp.dead {
		return proclet.ErrDead
	}
	if dst == gp.gpu {
		return nil
	}
	if !dst.Healthy() {
		return fmt.Errorf("gpu: destination: %w", deviceErr(dst))
	}
	if gp.gpu.Failed() {
		return fmt.Errorf("gpu: source unreadable: %w", deviceErr(gp.gpu))
	}
	if gp.migrating {
		return proclet.ErrMigrating
	}
	if err := dst.AllocMem(gp.modelBytes); err != nil {
		return err
	}
	src := gp.gpu
	gp.migrating = true
	for gp.active > 0 {
		gp.drained.Wait(p)
	}

	// Device -> host on the source machine; the device remains
	// readable after a spot reclaim, matching providers' grace
	// windows.
	src.Download(p, gp.modelBytes)
	if dst.Machine.ID != src.Machine.ID {
		if err := gp.sys.Cluster.Fabric.Transfer(p,
			simnet.NodeID(src.Machine.ID), simnet.NodeID(dst.Machine.ID), gp.modelBytes); err != nil {
			dst.FreeMem(gp.modelBytes)
			gp.migrating = false
			gp.unblocked.Broadcast()
			return err
		}
		if err := gp.sys.Runtime.Migrate(p, gp.pr.ID(), dst.Machine.ID); err != nil {
			dst.FreeMem(gp.modelBytes)
			gp.migrating = false
			gp.unblocked.Broadcast()
			return err
		}
	}
	dst.Upload(p, gp.modelBytes)

	src.FreeMem(gp.modelBytes)
	gp.gpu = dst
	gp.resetTelemetry()
	gp.migrating = false
	gp.unblocked.Broadcast()
	gp.sys.Trace.Emitf(gp.sys.K.Now(), trace.KindMigrate, gp.name,
		int(src.Machine.ID), int(dst.Machine.ID), "gpu %s -> %s (%d bytes)", src, dst, gp.modelBytes)
	return nil
}

// RestoreTo rebuilds the proclet on dst after its device died fatally:
// the model ships from the checkpoint mirror (network if the mirror is
// remote, then host link up). Without checkpointing the model is gone —
// training restarts from step zero and every acked step is counted
// lost. At most the one in-flight unacked step is lost when a mirror
// exists, because acks happen only after the delta reaches it.
func (gp *Proclet) RestoreTo(p *sim.Proc, dst *cluster.GPU) error {
	if gp.dead {
		return proclet.ErrDead
	}
	if !dst.Healthy() {
		return fmt.Errorf("gpu: destination: %w", deviceErr(dst))
	}
	if dst == gp.gpu {
		return fmt.Errorf("gpu: restore onto the failed device %s", dst)
	}
	if gp.migrating {
		return proclet.ErrMigrating
	}
	if err := dst.AllocMem(gp.modelBytes); err != nil {
		return err
	}
	src := gp.gpu
	gp.migrating = true
	// In-flight steps on the dead device wake from their kernel
	// sleeps, observe the failure, and abort unacked.
	for gp.active > 0 {
		gp.drained.Wait(p)
	}

	if gp.ckpt.Enabled() {
		if gp.ckptHome != dst.Machine.ID {
			if err := gp.sys.Cluster.Fabric.Transfer(p,
				simnet.NodeID(gp.ckptHome), simnet.NodeID(dst.Machine.ID), gp.modelBytes); err != nil {
				dst.FreeMem(gp.modelBytes)
				gp.migrating = false
				gp.unblocked.Broadcast()
				return err
			}
		}
		if lost := gp.acked - gp.ckptStep; lost > 0 {
			// Unreachable while ships are synchronous; kept as the
			// accounting truth if the protocol ever batches acks.
			gp.LostSteps.Addn(lost)
			gp.acked = gp.ckptStep
		}
	} else {
		gp.LostSteps.Addn(gp.acked)
		gp.acked = 0
		gp.ckptStep = 0
	}
	if dst.Machine.ID != src.Machine.ID {
		if err := gp.sys.Runtime.Migrate(p, gp.pr.ID(), dst.Machine.ID); err != nil {
			dst.FreeMem(gp.modelBytes)
			gp.migrating = false
			gp.unblocked.Broadcast()
			return err
		}
	}
	dst.Upload(p, gp.modelBytes)

	src.FreeMem(gp.modelBytes)
	gp.gpu = dst
	gp.resetTelemetry()
	gp.migrating = false
	gp.unblocked.Broadcast()
	gp.sys.Trace.Emitf(gp.sys.K.Now(), trace.KindRecover, gp.name,
		int(src.Machine.ID), int(dst.Machine.ID),
		"gpu restore %s -> %s from mirror m%d (step %d)", src, dst, gp.ckptHome, gp.ckptStep)
	return nil
}

// Destroy releases device memory and the control proclet.
func (gp *Proclet) Destroy() error {
	if gp.dead {
		return nil
	}
	gp.dead = true
	gp.gpu.FreeMem(gp.modelBytes)
	gp.unblocked.Broadcast()
	gp.sys.Sched.UnregisterProclet(gp.pr.ID())
	return gp.sys.Runtime.Destroy(gp.pr.ID())
}
