// Package gpu implements GPU resource proclets — the proclet type the
// paper motivates but had "not yet implemented" (§4), answering §5's
// question of how to migrate resource proclets across GPUs rapidly.
//
// A GPU proclet owns a model replica resident in device memory and
// exposes a training-step method: upload a batch over the host link,
// execute a kernel. Migration moves the device state to another GPU —
// over the host links for a same-machine move, plus the network for a
// cross-machine move — while new steps block and in-flight steps
// drain, mirroring the Nu migration protocol at the device level. A
// Fleet watches for reclaimed (spot) GPUs and evacuates their proclets
// to spares within a reactor period.
package gpu

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/proclet"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/trace"
)

// Errors returned by GPU proclet operations.
var (
	ErrReclaimed = errors.New("gpu: device reclaimed")
	ErrNoSpare   = errors.New("gpu: no available GPU with room")
)

// methodStep is the training-step method on the host-side proclet.
const methodStep = "gpu.step"

// controlHeap is the host-RAM footprint of a GPU proclet's control
// state (input pipeline buffers, launch queues).
const controlHeap = 1 << 20

// Proclet is a GPU resource proclet: model state in device memory plus
// a host-side control proclet on the device's machine.
type Proclet struct {
	sys  *core.System
	pr   *proclet.Proclet
	gpu  *cluster.GPU
	name string

	modelBytes int64
	stepKernel time.Duration

	migrating bool
	active    int
	drained   sim.Cond
	unblocked sim.Cond
	dead      bool

	// Steps counts completed training steps.
	Steps metrics.Counter
}

// New creates a GPU proclet on device g with modelBytes of device
// state; each training step costs stepKernel of device time plus the
// batch upload.
func New(sys *core.System, name string, g *cluster.GPU, modelBytes int64, stepKernel time.Duration) (*Proclet, error) {
	if !g.Available() {
		return nil, fmt.Errorf("%w: %s", ErrReclaimed, g)
	}
	if err := g.AllocMem(modelBytes); err != nil {
		return nil, err
	}
	pr, err := sys.Runtime.Spawn(name, g.Machine.ID, controlHeap)
	if err != nil {
		g.FreeMem(modelBytes)
		return nil, err
	}
	gp := &Proclet{
		sys:        sys,
		pr:         pr,
		gpu:        g,
		name:       name,
		modelBytes: modelBytes,
		stepKernel: stepKernel,
	}
	pr.Data = gp
	sys.Sched.RegisterProclet(pr, core.KindOther)
	sys.Sched.Pin(pr.ID()) // device affinity: only the Fleet moves it
	pr.Handle(methodStep, gp.step)
	return gp, nil
}

// step is the gpu.step method body. It must not block on migration
// completion: the migration protocol drains the control proclet's
// invocations, so waiting here would deadlock. Instead a migrating
// proclet rejects the step with ErrMigrating and the public Step
// wrapper retries from outside the invocation.
func (gp *Proclet) step(ctx *proclet.Ctx, arg proclet.Msg) (proclet.Msg, error) {
	if gp.migrating {
		return proclet.Msg{}, proclet.ErrMigrating
	}
	if gp.dead {
		return proclet.Msg{}, proclet.ErrDead
	}
	if !gp.gpu.Available() {
		return proclet.Msg{}, fmt.Errorf("%w: %s", ErrReclaimed, gp.gpu)
	}
	gp.active++
	batchBytes, _ := arg.Payload.(int64)
	gp.gpu.Upload(ctx.Proc, batchBytes)
	gp.gpu.ExecKernel(ctx.Proc, gp.stepKernel)
	gp.active--
	if gp.active == 0 {
		gp.drained.Broadcast()
	}
	gp.Steps.Inc()
	return proclet.Msg{}, nil
}

// Name returns the proclet's name.
func (gp *Proclet) Name() string { return gp.name }

// ProcletID returns the host-side proclet's ID.
func (gp *Proclet) ProcletID() proclet.ID { return gp.pr.ID() }

// Device returns the GPU currently hosting the model.
func (gp *Proclet) Device() *cluster.GPU { return gp.gpu }

// ModelBytes returns the device-resident state size.
func (gp *Proclet) ModelBytes() int64 { return gp.modelBytes }

// Step performs one training step from the caller's machine: the batch
// travels to the proclet's machine (network), then to the device
// (host link), then the kernel runs. Steps that land mid-migration
// wait (outside the invocation) for the move to finish and retry.
func (gp *Proclet) Step(p *sim.Proc, from cluster.MachineID, batchBytes int64) error {
	for {
		if gp.migrating {
			// Wait for the in-progress device move, then re-route (the
			// control proclet may now live on another machine).
			gp.unblocked.Wait(p)
			continue
		}
		_, err := gp.sys.Runtime.Invoke(p, from, 0, gp.pr.ID(), methodStep,
			proclet.Msg{Payload: batchBytes, Bytes: batchBytes})
		if errors.Is(err, proclet.ErrMigrating) {
			continue
		}
		return err
	}
}

// MigrateTo moves the model replica to another GPU: block new steps,
// drain in-flight ones, copy device state (host link down, network if
// cross-machine, host link up), move the control proclet if the
// machine changed, and resume.
func (gp *Proclet) MigrateTo(p *sim.Proc, dst *cluster.GPU) error {
	if gp.dead {
		return proclet.ErrDead
	}
	if dst == gp.gpu {
		return nil
	}
	if !dst.Available() {
		return fmt.Errorf("%w: destination %s", ErrReclaimed, dst)
	}
	if gp.migrating {
		return proclet.ErrMigrating
	}
	if err := dst.AllocMem(gp.modelBytes); err != nil {
		return err
	}
	src := gp.gpu
	gp.migrating = true
	for gp.active > 0 {
		gp.drained.Wait(p)
	}

	// Device -> host on the source machine. If the source GPU was
	// reclaimed (not just drained), the paper's checkpointing story
	// would kick in; here the device remains readable for evacuation,
	// matching providers' reclaim grace windows.
	src.Download(p, gp.modelBytes)
	if dst.Machine.ID != src.Machine.ID {
		if err := gp.sys.Cluster.Fabric.Transfer(p,
			simnet.NodeID(src.Machine.ID), simnet.NodeID(dst.Machine.ID), gp.modelBytes); err != nil {
			dst.FreeMem(gp.modelBytes)
			gp.migrating = false
			gp.unblocked.Broadcast()
			return err
		}
		if err := gp.sys.Runtime.Migrate(p, gp.pr.ID(), dst.Machine.ID); err != nil {
			dst.FreeMem(gp.modelBytes)
			gp.migrating = false
			gp.unblocked.Broadcast()
			return err
		}
	}
	dst.Upload(p, gp.modelBytes)

	src.FreeMem(gp.modelBytes)
	gp.gpu = dst
	gp.migrating = false
	gp.unblocked.Broadcast()
	gp.sys.Trace.Emitf(gp.sys.K.Now(), trace.KindMigrate, gp.name,
		int(src.Machine.ID), int(dst.Machine.ID), "gpu %s -> %s (%d bytes)", src, dst, gp.modelBytes)
	return nil
}

// Destroy releases device memory and the control proclet.
func (gp *Proclet) Destroy() error {
	if gp.dead {
		return nil
	}
	gp.dead = true
	gp.gpu.FreeMem(gp.modelBytes)
	gp.unblocked.Broadcast()
	gp.sys.Sched.UnregisterProclet(gp.pr.ID())
	return gp.sys.Runtime.Destroy(gp.pr.ID())
}
