package gpu

import (
	"errors"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/proclet"
	"repro/internal/sim"
)

// testSys builds 2 machines x 2 GPUs with simple numbers: 16 GB/s host
// links, 8 GiB device memory.
func testSys(t *testing.T) *core.System {
	t.Helper()
	s := core.NewSystem(core.DefaultConfig(), []cluster.MachineConfig{
		{Cores: 8, MemBytes: 8 << 30},
		{Cores: 8, MemBytes: 8 << 30},
	})
	for _, m := range s.Cluster.Machines() {
		m.AddGPUs(cluster.GPUConfig{Count: 2, MemBytes: 8 << 30, LinkBandwidth: 16_000_000_000})
	}
	return s
}

func TestGPUDeviceModel(t *testing.T) {
	s := testSys(t)
	g := s.Cluster.Machine(0).GPU(0)
	if g == nil || s.Cluster.Machine(0).NumGPUs() != 2 {
		t.Fatal("GPUs not attached")
	}
	s.K.Spawn("driver", func(p *sim.Proc) {
		// Two kernels serialize on the device.
		done := make([]sim.Time, 0, 2)
		var wg sim.WaitGroup
		for i := 0; i < 2; i++ {
			wg.Add(1)
			s.K.Spawn("k", func(q *sim.Proc) {
				g.ExecKernel(q, 5*time.Millisecond)
				done = append(done, q.Now())
				wg.Done()
			})
		}
		wg.Wait(p)
		if done[0] != 5*sim.Millisecond || done[1] != 10*sim.Millisecond {
			t.Errorf("kernel completions = %v, want serialized 5ms/10ms", done)
		}
		// Upload: 160 MB at 16 GB/s = 10 ms.
		start := p.Now()
		g.Upload(p, 160_000_000)
		if got := p.Now().Sub(start); got != 10*time.Millisecond {
			t.Errorf("upload took %v, want 10ms", got)
		}
	})
	s.K.Run()
	if g.KernelSeconds != 0.010 {
		t.Errorf("KernelSeconds = %v, want 0.010", g.KernelSeconds)
	}
}

func TestGPUMemAccounting(t *testing.T) {
	s := testSys(t)
	g := s.Cluster.Machine(0).GPU(0)
	if err := g.AllocMem(6 << 30); err != nil {
		t.Fatal(err)
	}
	if err := g.AllocMem(3 << 30); !errors.Is(err, cluster.ErrNoMemory) {
		t.Errorf("overcommit err = %v", err)
	}
	g.FreeMem(6 << 30)
	if g.MemUsed() != 0 {
		t.Errorf("MemUsed = %d", g.MemUsed())
	}
}

func TestProcletStepCosts(t *testing.T) {
	s := testSys(t)
	g := s.Cluster.Machine(0).GPU(0)
	gp, err := New(s, "trainer", g, 1<<30, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if g.MemUsed() != 1<<30 {
		t.Errorf("device mem = %d, want model resident", g.MemUsed())
	}
	s.K.Spawn("driver", func(p *sim.Proc) {
		start := p.Now()
		// 16 MB batch upload (1ms) + 5ms kernel, invoked locally.
		if err := gp.Step(p, 0, 16_000_000); err != nil {
			t.Fatalf("Step: %v", err)
		}
		elapsed := p.Now().Sub(start)
		if elapsed < 6*time.Millisecond || elapsed > 6200*time.Microsecond {
			t.Errorf("step took %v, want ~6ms", elapsed)
		}
	})
	s.K.Run()
	if gp.Steps.Value() != 1 {
		t.Errorf("Steps = %d", gp.Steps.Value())
	}
}

func TestMigrateSameMachine(t *testing.T) {
	s := testSys(t)
	m0 := s.Cluster.Machine(0)
	gp, _ := New(s, "trainer", m0.GPU(0), 1<<30, time.Millisecond)
	s.K.Spawn("ctl", func(p *sim.Proc) {
		start := p.Now()
		if err := gp.MigrateTo(p, m0.GPU(1)); err != nil {
			t.Fatalf("MigrateTo: %v", err)
		}
		// 1 GiB down + 1 GiB up at 16 GB/s = ~67ms + ~67ms.
		elapsed := p.Now().Sub(start)
		if elapsed < 130*time.Millisecond || elapsed > 140*time.Millisecond {
			t.Errorf("same-machine GPU migration took %v, want ~134ms", elapsed)
		}
	})
	s.K.Run()
	if gp.Device() != m0.GPU(1) {
		t.Error("device not updated")
	}
	if m0.GPU(0).MemUsed() != 0 || m0.GPU(1).MemUsed() != 1<<30 {
		t.Errorf("device memory: src=%d dst=%d", m0.GPU(0).MemUsed(), m0.GPU(1).MemUsed())
	}
}

func TestMigrateCrossMachineMovesControlProclet(t *testing.T) {
	s := testSys(t)
	gp, _ := New(s, "trainer", s.Cluster.Machine(0).GPU(0), 512<<20, time.Millisecond)
	dst := s.Cluster.Machine(1).GPU(0)
	s.K.Spawn("ctl", func(p *sim.Proc) {
		if err := gp.MigrateTo(p, dst); err != nil {
			t.Fatalf("MigrateTo: %v", err)
		}
		// Steps must work at the new location.
		if err := gp.Step(p, 1, 1_000_000); err != nil {
			t.Errorf("Step after migration: %v", err)
		}
	})
	s.K.Run()
	if gp.Device() != dst {
		t.Error("device not updated")
	}
	if loc := s.Runtime.Lookup(gp.ProcletID()).Location(); loc != 1 {
		t.Errorf("control proclet on machine %d, want 1", loc)
	}
}

func TestMigrationBlocksAndDrainsSteps(t *testing.T) {
	s := testSys(t)
	m0 := s.Cluster.Machine(0)
	gp, _ := New(s, "trainer", m0.GPU(0), 256<<20, 10*time.Millisecond)
	var stepDone, migDone sim.Time
	s.K.Spawn("stepper", func(p *sim.Proc) {
		if err := gp.Step(p, 0, 1_000_000); err != nil {
			t.Errorf("Step: %v", err)
		}
		stepDone = p.Now()
	})
	s.K.Spawn("ctl", func(p *sim.Proc) {
		p.Sleep(2 * time.Millisecond) // step now in flight
		if err := gp.MigrateTo(p, m0.GPU(1)); err != nil {
			t.Fatalf("MigrateTo: %v", err)
		}
		migDone = p.Now()
	})
	s.K.Run()
	if migDone <= stepDone {
		t.Errorf("migration (%v) must drain the in-flight step (%v)", migDone, stepDone)
	}
}

func TestMigrateToReclaimedFails(t *testing.T) {
	s := testSys(t)
	m0 := s.Cluster.Machine(0)
	gp, _ := New(s, "trainer", m0.GPU(0), 1<<20, time.Millisecond)
	m0.GPU(1).SetAvailable(false)
	s.K.Spawn("ctl", func(p *sim.Proc) {
		if err := gp.MigrateTo(p, m0.GPU(1)); !errors.Is(err, ErrReclaimed) {
			t.Errorf("err = %v, want ErrReclaimed", err)
		}
	})
	s.K.Run()
}

func TestStepOnReclaimedGPUFails(t *testing.T) {
	s := testSys(t)
	g := s.Cluster.Machine(0).GPU(0)
	gp, _ := New(s, "trainer", g, 1<<20, time.Millisecond)
	g.SetAvailable(false)
	s.K.Spawn("driver", func(p *sim.Proc) {
		if err := gp.Step(p, 0, 1000); !errors.Is(err, ErrReclaimed) {
			t.Errorf("err = %v, want ErrReclaimed", err)
		}
	})
	s.K.Run()
}

func TestFleetEvacuatesOnReclaim(t *testing.T) {
	s := testSys(t)
	fleet := NewFleet(s, "fleet", time.Millisecond)
	gp, err := fleet.Add("trainer-0", 256<<20, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	fleet.Start()
	src := gp.Device()
	s.K.Schedule(5*sim.Millisecond, func() { src.SetAvailable(false) })
	s.K.RunUntil(sim.Time(100 * time.Millisecond))
	fleet.Stop()
	if gp.Device() == src {
		t.Fatal("proclet not evacuated from reclaimed GPU")
	}
	if !gp.Device().Available() {
		t.Error("evacuated to an unavailable GPU")
	}
	if fleet.Evacuations.Value() != 1 {
		t.Errorf("Evacuations = %d, want 1", fleet.Evacuations.Value())
	}
	// 256 MiB down+up (~16+16ms, maybe + wire) within ~50ms.
	if lat := fleet.MigrationLatency.Max(); lat > 0.06 {
		t.Errorf("evac latency = %vs, want < 60ms", lat)
	}
}

func TestFleetStrandedWhenNoSpare(t *testing.T) {
	s := testSys(t)
	fleet := NewFleet(s, "fleet", time.Millisecond)
	gp, _ := fleet.Add("trainer-0", 1<<20, time.Millisecond)
	fleet.Start()
	// Reclaim everything.
	for _, m := range s.Cluster.Machines() {
		for _, g := range m.GPUs() {
			g.SetAvailable(false)
		}
	}
	s.K.RunUntil(sim.Time(10 * time.Millisecond))
	fleet.Stop()
	if fleet.Evacuations.Value() != 0 {
		t.Error("evacuated with no spare available")
	}
	if fleet.Stranded.Value() == 0 {
		t.Error("stranded condition not recorded")
	}
	_ = gp
}

func TestDestroyReleasesEverything(t *testing.T) {
	s := testSys(t)
	g := s.Cluster.Machine(0).GPU(0)
	gp, _ := New(s, "trainer", g, 1<<30, time.Millisecond)
	if err := gp.Destroy(); err != nil {
		t.Fatal(err)
	}
	if g.MemUsed() != 0 {
		t.Errorf("device mem leaked: %d", g.MemUsed())
	}
	if s.Cluster.Machine(0).MemUsed() != 0 {
		t.Errorf("host mem leaked: %d", s.Cluster.Machine(0).MemUsed())
	}
	s.K.Spawn("driver", func(p *sim.Proc) {
		if err := gp.Step(p, 0, 1000); !errors.Is(err, proclet.ErrNotFound) && !errors.Is(err, proclet.ErrDead) {
			t.Errorf("step after destroy: %v", err)
		}
	})
	s.K.Run()
}
