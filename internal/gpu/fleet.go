package gpu

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Fleet manages a set of GPU proclets against a pool of (possibly
// spot) GPUs: a watcher detects reclaimed devices and evacuates their
// proclets to available spares, applying the same fast-reaction
// philosophy as the CPU/memory reactors.
type Fleet struct {
	sys    *core.System
	name   string
	procs  []*Proclet
	period time.Duration

	stopped bool

	// Evacuations counts reclaim-driven migrations; MigrationLatency
	// records their durations in seconds.
	Evacuations      metrics.Counter
	MigrationLatency *metrics.Histogram
	// Stranded counts watcher passes where a proclet sat on a
	// reclaimed GPU with nowhere to go.
	Stranded metrics.Counter
}

// NewFleet creates a fleet manager. period is the reclaim-detection
// interval (the fast-path reactor period is a natural choice).
func NewFleet(sys *core.System, name string, period time.Duration) *Fleet {
	if period <= 0 {
		period = time.Millisecond
	}
	return &Fleet{
		sys:              sys,
		name:             name,
		period:           period,
		MigrationLatency: metrics.NewHistogram(name + ".evac_latency"),
	}
}

// Add places a new GPU proclet on the best available GPU and tracks it.
func (f *Fleet) Add(name string, modelBytes int64, stepKernel time.Duration) (*Proclet, error) {
	g, err := f.PickGPU(nil)
	if err != nil {
		return nil, err
	}
	gp, err := New(f.sys, name, g, modelBytes, stepKernel)
	if err != nil {
		return nil, err
	}
	f.procs = append(f.procs, gp)
	return gp, nil
}

// Proclets returns the managed proclets.
func (f *Fleet) Proclets() []*Proclet { return f.procs }

// PickGPU returns the available GPU with the most free device memory,
// excluding `exclude`. Occupancy (one training proclet per device) is
// the tiebreak via free memory.
func (f *Fleet) PickGPU(exclude *cluster.GPU) (*cluster.GPU, error) {
	var best *cluster.GPU
	for _, m := range f.sys.Cluster.Machines() {
		for _, g := range m.GPUs() {
			if g == exclude || !g.Available() {
				continue
			}
			if best == nil || g.MemFree() > best.MemFree() {
				best = g
			}
		}
	}
	if best == nil {
		return nil, ErrNoSpare
	}
	return best, nil
}

// Start launches the reclaim watcher.
func (f *Fleet) Start() {
	f.sys.K.Spawn(fmt.Sprintf("gpu-fleet/%s", f.name), func(p *sim.Proc) {
		for !f.stopped {
			p.Sleep(f.period)
			f.react(p)
		}
	})
}

// Stop ends the watcher at its next tick.
func (f *Fleet) Stop() { f.stopped = true }

// react evacuates every proclet sitting on a reclaimed GPU.
func (f *Fleet) react(p *sim.Proc) {
	for _, gp := range f.procs {
		if gp.dead || gp.Device().Available() {
			continue
		}
		dst, err := f.PickGPU(gp.Device())
		if err != nil {
			f.Stranded.Inc()
			continue
		}
		if dst.MemFree() < gp.ModelBytes() {
			f.Stranded.Inc()
			continue
		}
		start := p.Now()
		if err := gp.MigrateTo(p, dst); err != nil {
			f.Stranded.Inc()
			continue
		}
		f.Evacuations.Inc()
		f.MigrationLatency.ObserveDuration(p.Now().Sub(start))
	}
}
