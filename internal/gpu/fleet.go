package gpu

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Config tunes a Fleet.
type Config struct {
	// Period is the watcher interval; faults also Kick the watcher so
	// reaction latency is not quantized to it.
	Period time.Duration
	// Checkpoint applies to proclets created through Add.
	Checkpoint CheckpointConfig

	// StragglerFactor flags a proclet whose step-latency EWMA exceeds
	// factor × fleet-median (default 1.7).
	StragglerFactor float64
	// Hysteresis is how many consecutive watcher passes a proclet must
	// look slow before mitigation — a single throttle flap or stutter
	// spike doesn't trigger a move (default 3).
	Hysteresis int
	// CooldownPasses suppresses re-mitigating (or re-judging) a
	// proclet for this many passes after it changes device, so the
	// fresh EWMA can stabilize (default 10).
	CooldownPasses int64
	// MinSamples is how many steps must feed a proclet's EWMA on its
	// current device before the detector judges it (default 6).
	MinSamples int64
}

func (c Config) withDefaults() Config {
	if c.Period <= 0 {
		c.Period = time.Millisecond
	}
	if c.StragglerFactor <= 1 {
		c.StragglerFactor = 1.7
	}
	if c.Hysteresis <= 0 {
		c.Hysteresis = 3
	}
	if c.CooldownPasses <= 0 {
		c.CooldownPasses = 10
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 6
	}
	return c
}

// entry is a managed proclet plus its straggler-detector state.
type entry struct {
	gp            *Proclet
	strikes       int   // consecutive passes over the straggler threshold
	cooldownUntil int64 // pass number before which the detector stays quiet
}

// Fleet manages a set of GPU proclets against a pool of (possibly
// spot, possibly flaky) GPUs. A watcher reacts to device state in
// deterministic proclet order:
//
//   - fatally failed device (XID) → checkpoint-based re-placement,
//   - reclaimed device → evacuation over the readable grace window,
//   - straggling proclet (EWMA vs. fleet median, with hysteresis and
//     cooldown so throttle flaps don't thrash) → speculative
//     re-dispatch to a strictly faster spare.
type Fleet struct {
	sys   *core.System
	name  string
	cfg   Config
	procs []*entry

	stopped bool
	wake    sim.Cond
	pass    int64

	// Evacuations counts reclaim-driven migrations; Restores counts
	// checkpoint re-placements after fatal device errors; Mitigations
	// counts straggler-driven moves. MigrationLatency records all
	// their durations in seconds.
	Evacuations      metrics.Counter
	Restores         metrics.Counter
	Mitigations      metrics.Counter
	MigrationLatency *metrics.Histogram
	// Stranded counts watcher passes where a proclet sat on a lost
	// device with nowhere to go.
	Stranded metrics.Counter
}

// NewFleet creates a fleet manager with default straggler tuning and
// no checkpointing. period is the reclaim-detection interval (the
// fast-path reactor period is a natural choice).
func NewFleet(sys *core.System, name string, period time.Duration) *Fleet {
	return NewFleetConfig(sys, name, Config{Period: period})
}

// NewFleetConfig creates a fleet manager.
func NewFleetConfig(sys *core.System, name string, cfg Config) *Fleet {
	return &Fleet{
		sys:              sys,
		name:             name,
		cfg:              cfg.withDefaults(),
		MigrationLatency: metrics.NewHistogram(name + ".evac_latency"),
	}
}

// Add places a new GPU proclet on the best available GPU (most free
// memory among devices with room) and tracks it, with the fleet's
// checkpoint policy.
func (f *Fleet) Add(name string, modelBytes int64, stepKernel time.Duration) (*Proclet, error) {
	g, err := f.PickGPU(modelBytes, nil)
	if err != nil {
		return nil, err
	}
	gp, err := NewCheckpointed(f.sys, name, g, modelBytes, stepKernel, f.cfg.Checkpoint)
	if err != nil {
		return nil, err
	}
	f.procs = append(f.procs, &entry{gp: gp})
	return gp, nil
}

// Proclets returns the managed proclets.
func (f *Fleet) Proclets() []*Proclet {
	out := make([]*Proclet, len(f.procs))
	for i, e := range f.procs {
		out[i] = e.gp
	}
	return out
}

// PickGPU returns the healthy GPU with the most free device memory
// among those with at least need bytes free, excluding `exclude`.
// Folding the capacity requirement in here (rather than checking after
// the pick) means a smaller device with room is chosen over a larger
// one without.
func (f *Fleet) PickGPU(need int64, exclude *cluster.GPU) (*cluster.GPU, error) {
	var best *cluster.GPU
	for _, m := range f.sys.Cluster.Machines() {
		for _, g := range m.GPUs() {
			if g == exclude || !g.Healthy() || g.MemFree() < need {
				continue
			}
			if best == nil || g.MemFree() > best.MemFree() {
				best = g
			}
		}
	}
	if best == nil {
		return nil, ErrNoSpare
	}
	return best, nil
}

// residents counts live managed proclets currently placed on g.
func (f *Fleet) residents(g *cluster.GPU) float64 {
	n := 0.0
	for _, e := range f.procs {
		if !e.gp.dead && e.gp.Device() == g {
			n++
		}
	}
	return n
}

// pickFaster returns the healthy spare with room whose effective speed
// (class speed over thermal throttle, divided by how many fleet
// proclets would share the device) beats the straggler's current
// per-proclet rate by a margin — moving sideways is never worth a
// model copy, and piling onto an already-busy fast device only
// time-slices it back down to what the straggler already has. Ties
// break toward more free memory, then machine/device order.
func (f *Fleet) pickFaster(gp *Proclet) *cluster.GPU {
	cur := gp.Device()
	curShare := f.residents(cur)
	if curShare < 1 {
		curShare = 1
	}
	needSpeed := cur.EffectiveSpeed() / curShare * 1.1
	var best *cluster.GPU
	bestSpeed := 0.0
	for _, m := range f.sys.Cluster.Machines() {
		for _, g := range m.GPUs() {
			if g == cur || !g.Healthy() || g.MemFree() < gp.ModelBytes() {
				continue
			}
			speed := g.EffectiveSpeed() / (f.residents(g) + 1)
			if speed < needSpeed {
				continue
			}
			if best == nil || speed > bestSpeed ||
				(speed == bestSpeed && g.MemFree() > best.MemFree()) {
				best = g
				bestSpeed = speed
			}
		}
	}
	return best
}

// AttachTelemetry registers per-proclet step-latency and queue-delay
// gauges for every currently managed proclet, following the
// proclet.<name>.qdelay_ms naming convention. Call after Add.
func (f *Fleet) AttachTelemetry(tel *obs.Telemetry) {
	for _, e := range f.procs {
		gp := e.gp
		machine := int(gp.Device().Machine.ID)
		tel.Register(fmt.Sprintf("gpu.%s.step_ms", gp.Name()), machine, gp.StepLatencyMS)
		tel.Register(fmt.Sprintf("gpu.%s.qdelay_ms", gp.Name()), machine, gp.QueueDelayMS)
	}
}

// Start launches the watcher.
func (f *Fleet) Start() {
	f.sys.K.Spawn(fmt.Sprintf("gpu-fleet/%s", f.name), func(p *sim.Proc) {
		for {
			if f.stopped {
				return
			}
			f.wake.WaitTimeout(p, f.cfg.Period)
			if f.stopped {
				return
			}
			f.react(p)
		}
	})
}

// Stop shuts the watcher down immediately: the watcher proc wakes at
// the same instant and exits without another reaction pass.
func (f *Fleet) Stop() {
	f.stopped = true
	f.wake.Broadcast()
}

// Kick wakes the watcher for an immediate reaction pass — fault hooks
// call this so reaction latency is bounded by the event, not the
// period. Wire it as fault.Injector.HookGPU:
//
//	inj.HookGPU = func(cluster.MachineID, int) { fleet.Kick() }
func (f *Fleet) Kick() {
	if !f.stopped {
		f.wake.Broadcast()
	}
}

// react runs one watcher pass. Proclets are visited in Add order, so
// contention for spares resolves deterministically (earlier proclets
// win).
func (f *Fleet) react(p *sim.Proc) {
	f.pass++
	// Fatal device errors first: these proclets are down, not slow.
	for _, e := range f.procs {
		gp := e.gp
		if gp.dead || !gp.Device().Failed() {
			continue
		}
		dst, err := f.PickGPU(gp.ModelBytes(), gp.Device())
		if err != nil {
			f.Stranded.Inc()
			continue
		}
		start := p.Now()
		if err := gp.RestoreTo(p, dst); err != nil {
			f.Stranded.Inc()
			continue
		}
		f.Restores.Inc()
		f.MigrationLatency.ObserveDuration(p.Now().Sub(start))
		f.settle(e)
	}
	// Spot reclaims: the device is readable for the grace window, so
	// evacuate by readback.
	for _, e := range f.procs {
		gp := e.gp
		d := gp.Device()
		if gp.dead || d.Available() || d.Failed() {
			continue
		}
		dst, err := f.PickGPU(gp.ModelBytes(), d)
		if err != nil {
			f.Stranded.Inc()
			continue
		}
		start := p.Now()
		if err := gp.MigrateTo(p, dst); err != nil {
			f.Stranded.Inc()
			continue
		}
		f.Evacuations.Inc()
		f.MigrationLatency.ObserveDuration(p.Now().Sub(start))
		f.settle(e)
	}
	f.detectStragglers(p)
	// Release drivers parked in AwaitPlaced whose proclet is whole
	// again (including devices healed in place).
	for _, e := range f.procs {
		if gp := e.gp; !gp.dead && !gp.migrating && gp.Device().Healthy() {
			gp.unblocked.Broadcast()
		}
	}
}

// settle resets detector state after a proclet changes device.
func (f *Fleet) settle(e *entry) {
	e.strikes = 0
	e.cooldownUntil = f.pass + f.cfg.CooldownPasses
}

// detectStragglers compares each proclet's step-latency EWMA against
// the fleet median and speculatively re-dispatches persistent outliers
// to a strictly faster spare. Hysteresis (consecutive strikes) and a
// post-move cooldown keep throttle flaps from thrashing the fleet.
func (f *Fleet) detectStragglers(p *sim.Proc) {
	var lats []float64
	for _, e := range f.procs {
		if gp := e.gp; !gp.dead && gp.Device().Healthy() && gp.StepSamples() >= f.cfg.MinSamples {
			lats = append(lats, gp.StepLatencyMS())
		}
	}
	if len(lats) < 2 {
		return
	}
	sort.Float64s(lats)
	// Lower-middle on even counts: in a two-proclet fleet the slow one
	// must be judged against the fast one, not against itself.
	median := lats[(len(lats)-1)/2]
	if median <= 0 {
		return
	}
	threshold := median * f.cfg.StragglerFactor
	for _, e := range f.procs {
		gp := e.gp
		if gp.dead || !gp.Device().Healthy() || gp.StepSamples() < f.cfg.MinSamples {
			continue
		}
		if gp.StepLatencyMS() <= threshold {
			e.strikes = 0
			continue
		}
		e.strikes++
		if e.strikes < f.cfg.Hysteresis || f.pass < e.cooldownUntil {
			continue
		}
		dst := f.pickFaster(gp)
		if dst == nil {
			// Nowhere strictly better — moving would churn, not help.
			continue
		}
		f.sys.Trace.Emitf(p.Now(), trace.KindRebalance, gp.Name(),
			int(gp.Device().Machine.ID), int(dst.Machine.ID),
			"straggler %.3fms vs median %.3fms: re-dispatch %s -> %s",
			gp.StepLatencyMS(), median, gp.Device(), dst)
		start := p.Now()
		if err := gp.MigrateTo(p, dst); err != nil {
			continue
		}
		f.Mitigations.Inc()
		f.MigrationLatency.ObserveDuration(p.Now().Sub(start))
		f.settle(e)
	}
}

// LostSteps sums acked-then-lost steps across the fleet — zero
// whenever checkpointing is on.
func (f *Fleet) LostSteps() int64 {
	var n int64
	for _, e := range f.procs {
		n += e.gp.LostSteps.Value()
	}
	return n
}
