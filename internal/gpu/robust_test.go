package gpu

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/sim"
)

// heteroSys builds a 2-machine fleet with mixed device classes:
// machine 0 carries two fast 8 GiB devices, machine 1 two slow 4 GiB
// ones. 16 GB/s host links throughout.
func heteroSys(t *testing.T, seed int64) *core.System {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	s := core.NewSystem(cfg, []cluster.MachineConfig{
		{Cores: 8, MemBytes: 8 << 30},
		{Cores: 8, MemBytes: 8 << 30},
	})
	s.Cluster.Machine(0).AddGPUs(cluster.GPUConfig{
		Count: 2, MemBytes: 8 << 30, LinkBandwidth: 16_000_000_000, Class: "fast", Speed: 2})
	s.Cluster.Machine(1).AddGPUs(cluster.GPUConfig{
		Count: 2, MemBytes: 4 << 30, LinkBandwidth: 16_000_000_000, Class: "slow", Speed: 1})
	return s
}

// drive runs a training loop until the proclet has acked `target`
// steps or the horizon passes, retrying across device losses.
func drive(s *core.System, gp *Proclet, batch int64, target int64) {
	s.K.Spawn("driver/"+gp.Name(), func(p *sim.Proc) {
		for gp.CompletedSteps() < target {
			if err := gp.Step(p, gp.Device().Machine.ID, batch); err != nil {
				if gp.AwaitPlaced(p) != nil {
					return
				}
			}
		}
	})
}

func TestPickGPUCapacityAware(t *testing.T) {
	s := heteroSys(t, 1)
	f := NewFleet(s, "fleet", time.Millisecond)
	big0, big1 := s.Cluster.Machine(0).GPU(0), s.Cluster.Machine(0).GPU(1)

	// Occupy the big devices so their free memory drops below the
	// small ones: a capacity-blind max-free pick would still choose a
	// big device and strand the proclet at placement time.
	if err := big0.AllocMem(7 << 30); err != nil {
		t.Fatal(err)
	}
	if err := big1.AllocMem(7 << 30); err != nil {
		t.Fatal(err)
	}
	g, err := f.PickGPU(2<<30, nil)
	if err != nil {
		t.Fatalf("PickGPU: %v", err)
	}
	if g.MemCapacity() != 4<<30 {
		t.Errorf("picked %s (cap %d), want a small device with room", g, g.MemCapacity())
	}

	// Nothing has 5 GiB free: a clean ErrNoSpare, not a doomed pick.
	if _, err := f.PickGPU(5<<30, nil); !errors.Is(err, ErrNoSpare) {
		t.Errorf("err = %v, want ErrNoSpare", err)
	}

	// Unhealthy devices are never candidates, even with the most room.
	big0.FreeMem(7 << 30)
	big0.Fail(79)
	g, err = f.PickGPU(2<<30, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g == big0 {
		t.Error("picked a fatally failed device")
	}
	// Exclude works alongside the capacity filter.
	if g2, _ := f.PickGPU(2<<30, g); g2 == g {
		t.Error("exclude ignored")
	}
}

func TestFleetStopImmediate(t *testing.T) {
	s := heteroSys(t, 1)
	f := NewFleet(s, "fleet", time.Millisecond)
	gp, err := f.Add("trainer-0", 1<<30, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	src := gp.Device()
	// Stop mid-period, then reclaim. The old watcher woke once more at
	// the next tick and evacuated; a deterministic Stop must not react
	// after the call returns.
	s.K.Schedule(sim.Time(2500*time.Microsecond), func() { f.Stop() })
	s.K.Schedule(sim.Time(2600*time.Microsecond), func() { src.SetAvailable(false) })
	s.K.RunUntil(sim.Time(50 * time.Millisecond))
	if f.Evacuations.Value() != 0 {
		t.Errorf("Evacuations = %d after Stop, want 0", f.Evacuations.Value())
	}
	if gp.Device() != src {
		t.Error("proclet moved after Stop")
	}
	// Kick after Stop must stay a no-op.
	f.Kick()
	s.K.RunUntil(sim.Time(60 * time.Millisecond))
	if f.Evacuations.Value() != 0 {
		t.Error("Kick revived a stopped fleet")
	}
}

func TestFleetConcurrentReclaimDeterministic(t *testing.T) {
	// Three trainers, each on its own 3 GiB device on machine 0; the
	// single 2 GiB device on machine 1 is the only spare with room for
	// a 1.8 GiB model (the third big device keeps only 1.2 GiB free).
	// Reclaiming two devices in the same watcher pass makes both
	// proclets contend for that one spare: victims are visited in Add
	// order, so trainer-0 wins it and trainer-1 strands, regardless of
	// the order the reclaims were declared in. Identical outcomes
	// across seeds.
	cases := []struct {
		name            string
		reclaim         []int // trainer indices whose device is reclaimed
		wantEvacuations int64
		wantStranded    bool
		wantWinner      int // trainer index that lands on the spare (-1 none)
	}{
		{"single", []int{0}, 1, false, 0},
		{"two-for-one-spare", []int{0, 1}, 1, true, 0},
		{"reverse-order-same-winner", []int{1, 0}, 1, true, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			type outcome struct {
				evacs, stranded int64
				devices         string
			}
			var first outcome
			for i, seed := range []int64{1, 2, 3, 4, 5} {
				cfg := core.DefaultConfig()
				cfg.Seed = seed
				s := core.NewSystem(cfg, []cluster.MachineConfig{
					{Cores: 8, MemBytes: 8 << 30},
					{Cores: 8, MemBytes: 8 << 30},
				})
				s.Cluster.Machine(0).AddGPUs(cluster.GPUConfig{
					Count: 3, MemBytes: 3 << 30, LinkBandwidth: 16_000_000_000})
				s.Cluster.Machine(1).AddGPUs(cluster.GPUConfig{
					Count: 1, MemBytes: 2 << 30, LinkBandwidth: 16_000_000_000})
				f := NewFleet(s, "fleet", time.Millisecond)
				var procs []*Proclet
				for j := 0; j < 3; j++ {
					gp, err := f.Add(fmt.Sprintf("trainer-%d", j), 1800<<20, time.Millisecond)
					if err != nil {
						t.Fatal(err)
					}
					procs = append(procs, gp)
				}
				f.Start()
				s.K.Schedule(sim.Millisecond/2, func() {
					for _, idx := range tc.reclaim {
						procs[idx].Device().SetAvailable(false)
					}
				})
				s.K.RunUntil(sim.Time(800 * time.Millisecond))
				f.Stop()
				var devs string
				for _, gp := range procs {
					devs += gp.Device().String() + " "
				}
				got := outcome{f.Evacuations.Value(), f.Stranded.Value(), devs}
				if got.evacs != tc.wantEvacuations {
					t.Errorf("seed %d: Evacuations = %d, want %d", seed, got.evacs, tc.wantEvacuations)
				}
				if (got.stranded > 0) != tc.wantStranded {
					t.Errorf("seed %d: Stranded = %d, want stranded=%v", seed, got.stranded, tc.wantStranded)
				}
				if tc.wantWinner >= 0 {
					if w := procs[tc.wantWinner].Device(); !w.Available() || w.MemCapacity() != 2<<30 {
						t.Errorf("seed %d: winner on %s, want the machine-1 spare", seed, w)
					}
				}
				if i == 0 {
					first = got
				} else if got != first {
					t.Errorf("seed %d: outcome %+v differs from seed 1's %+v", seed, got, first)
				}
			}
		})
	}
}

func TestCheckpointedRestoreAfterXid(t *testing.T) {
	s := heteroSys(t, 1)
	f := NewFleetConfig(s, "fleet", Config{
		Period:     time.Millisecond,
		Checkpoint: CheckpointConfig{DeltaBytes: 8 << 20, SnapshotEvery: 16, Home: AutoHome},
	})
	gp, err := f.Add("trainer-0", 1<<30, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if gp.CheckpointHome() == gp.Device().Machine.ID {
		t.Errorf("checkpoint home m%d not anti-affine to device %s", gp.CheckpointHome(), gp.Device())
	}
	f.Start()
	src := gp.Device()
	drive(s, gp, 1<<20, 1<<60)
	var ackedAtFail int64
	s.K.Schedule(sim.Time(20*time.Millisecond), func() {
		ackedAtFail = gp.CompletedSteps()
		src.Fail(79)
		f.Kick()
	})
	s.K.RunUntil(sim.Time(300 * time.Millisecond))
	f.Stop()
	if gp.Device() == src {
		t.Fatal("proclet still on the failed device")
	}
	if f.Restores.Value() != 1 {
		t.Errorf("Restores = %d, want 1", f.Restores.Value())
	}
	if f.LostSteps() != 0 {
		t.Errorf("LostSteps = %d, want 0 (checkpointed)", f.LostSteps())
	}
	if ackedAtFail < 2 {
		t.Fatalf("only %d steps acked before the failure — test not exercising the window", ackedAtFail)
	}
	if got := gp.CompletedSteps(); got < ackedAtFail {
		t.Errorf("CompletedSteps = %d < %d acked at failure: acked work was lost", got, ackedAtFail)
	}
	if gp.Checkpoints.Value() < ackedAtFail {
		t.Errorf("Checkpoints = %d < acked %d: ack preceded mirror ship", gp.Checkpoints.Value(), ackedAtFail)
	}
}

func TestUncheckpointedXidLosesAckedWork(t *testing.T) {
	s := heteroSys(t, 1)
	f := NewFleet(s, "fleet", time.Millisecond)
	gp, err := f.Add("trainer-0", 1<<30, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	src := gp.Device()
	drive(s, gp, 1<<20, 1<<60)
	var ackedAtFail int64
	s.K.Schedule(sim.Time(20*time.Millisecond), func() {
		ackedAtFail = gp.CompletedSteps()
		src.Fail(48)
		f.Kick()
	})
	s.K.RunUntil(sim.Time(300 * time.Millisecond))
	f.Stop()
	if ackedAtFail == 0 {
		t.Fatal("no steps acked before failure")
	}
	if got := gp.LostSteps.Value(); got != ackedAtFail {
		t.Errorf("LostSteps = %d, want %d (all acked work gone without a mirror)", got, ackedAtFail)
	}
	if gp.Device() == src || f.Restores.Value() != 1 {
		t.Errorf("re-placement missing: dev=%s restores=%d", gp.Device(), f.Restores.Value())
	}
}

func TestXidMidStepLosesAtMostInFlight(t *testing.T) {
	s := heteroSys(t, 1)
	f := NewFleetConfig(s, "fleet", Config{
		Period:     time.Millisecond,
		Checkpoint: CheckpointConfig{DeltaBytes: 8 << 20, Home: AutoHome},
	})
	// 10ms kernels so the XID lands mid-kernel.
	gp, err := f.Add("trainer-0", 1<<30, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	src := gp.Device()
	drive(s, gp, 1<<20, 1<<60)
	s.K.Schedule(sim.Time(12*time.Millisecond), func() { // mid 2nd step
		src.Fail(79)
		f.Kick()
	})
	s.K.RunUntil(sim.Time(400 * time.Millisecond))
	f.Stop()
	if f.LostSteps() != 0 {
		t.Errorf("LostSteps = %d, want 0: the in-flight step was never acked", f.LostSteps())
	}
	if gp.CompletedSteps() < 5 {
		t.Errorf("training stalled after mid-step XID: %d steps", gp.CompletedSteps())
	}
}

func TestStragglerMitigationWithHysteresis(t *testing.T) {
	// Three trainers on slow devices, so the fleet median stays
	// anchored at the slow-class latency after one trainer escapes to
	// a fast spare — the healthy peers must not chase it.
	cfg := core.DefaultConfig()
	cfg.Seed = 1
	s := core.NewSystem(cfg, []cluster.MachineConfig{
		{Cores: 8, MemBytes: 8 << 30},
		{Cores: 8, MemBytes: 8 << 30},
	})
	s.Cluster.Machine(0).AddGPUs(cluster.GPUConfig{
		Count: 2, MemBytes: 8 << 30, LinkBandwidth: 16_000_000_000, Class: "fast", Speed: 2})
	s.Cluster.Machine(1).AddGPUs(cluster.GPUConfig{
		Count: 3, MemBytes: 4 << 30, LinkBandwidth: 16_000_000_000, Class: "slow", Speed: 1})
	f := NewFleetConfig(s, "fleet", Config{
		Period:          time.Millisecond,
		StragglerFactor: 1.5,
		Hysteresis:      3,
		MinSamples:      4,
	})
	var procs []*Proclet
	for j := 0; j < 3; j++ {
		g := s.Cluster.Machine(1).GPU(j)
		gp, err := NewCheckpointed(s, fmt.Sprintf("trainer-%d", j), g, 256<<20, time.Millisecond, CheckpointConfig{})
		if err != nil {
			t.Fatal(err)
		}
		f.procs = append(f.procs, &entry{gp: gp})
		procs = append(procs, gp)
		drive(s, gp, 1<<20, 1<<60)
	}
	f.Start()
	victim := procs[0].Device()
	// A sustained thermal throttle makes trainer-0 a 4x straggler.
	s.K.Schedule(sim.Time(10*time.Millisecond), func() { victim.SetThrottle(4) })
	s.K.RunUntil(sim.Time(200 * time.Millisecond))
	f.Stop()
	if f.Mitigations.Value() != 1 {
		t.Fatalf("Mitigations = %d, want exactly 1", f.Mitigations.Value())
	}
	if procs[0].Device() == victim {
		t.Error("straggler still on the throttled device")
	}
	if procs[0].Device().Class() != "fast" {
		t.Errorf("re-dispatched to %s (%s), want a strictly faster device",
			procs[0].Device(), procs[0].Device().Class())
	}
	if procs[1].Device().Class() != "slow" || procs[2].Device().Class() != "slow" {
		t.Error("healthy peers were moved — detector thrashing")
	}
}

func TestStragglerNoPileOnSharedSpare(t *testing.T) {
	// One slow trainer, one fast trainer, and no free fast device: the
	// only "faster" candidate is the device the fast trainer already
	// occupies. Time-slicing two proclets on it would hand the mover the
	// same per-proclet rate it already has, so the detector must leave
	// the slow trainer in place rather than churn a model copy.
	cfg := core.DefaultConfig()
	cfg.Seed = 1
	s := core.NewSystem(cfg, []cluster.MachineConfig{
		{Cores: 8, MemBytes: 8 << 30},
		{Cores: 8, MemBytes: 8 << 30},
	})
	s.Cluster.Machine(0).AddGPUs(cluster.GPUConfig{
		Count: 1, MemBytes: 8 << 30, LinkBandwidth: 16_000_000_000, Class: "fast", Speed: 2})
	s.Cluster.Machine(1).AddGPUs(cluster.GPUConfig{
		Count: 1, MemBytes: 8 << 30, LinkBandwidth: 16_000_000_000, Class: "slow", Speed: 1})
	f := NewFleetConfig(s, "fleet", Config{
		Period:          time.Millisecond,
		StragglerFactor: 1.5,
		Hysteresis:      3,
		MinSamples:      4,
	})
	slowDev := s.Cluster.Machine(1).GPU(0)
	fastDev := s.Cluster.Machine(0).GPU(0)
	slow, err := New(s, "slow-trainer", slowDev, 1<<30, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := New(s, "fast-trainer", fastDev, 1<<30, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	f.procs = append(f.procs, &entry{gp: slow}, &entry{gp: fast})
	drive(s, slow, 1<<20, 1<<60)
	drive(s, fast, 1<<20, 1<<60)
	f.Start()
	s.K.RunUntil(sim.Time(100 * time.Millisecond))
	f.Stop()
	if f.Mitigations.Value() != 0 {
		t.Errorf("Mitigations = %d, want 0: the only faster device is occupied", f.Mitigations.Value())
	}
	if slow.Device() != slowDev {
		t.Errorf("slow trainer moved to %s: piled onto the occupied fast device", slow.Device())
	}
}

func TestStragglerFlapDoesNotThrash(t *testing.T) {
	s := heteroSys(t, 1)
	f := NewFleetConfig(s, "fleet", Config{
		Period:          time.Millisecond,
		StragglerFactor: 1.5,
		Hysteresis:      5,
		MinSamples:      4,
	})
	var procs []*Proclet
	for j := 0; j < 2; j++ {
		g := s.Cluster.Machine(1).GPU(j)
		gp, err := New(s, fmt.Sprintf("trainer-%d", j), g, 1<<30, time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		f.procs = append(f.procs, &entry{gp: gp})
		procs = append(procs, gp)
		drive(s, gp, 1<<20, 1<<60)
	}
	f.Start()
	victim := procs[0].Device()
	// A throttle flap shorter than the hysteresis window: on at 10ms,
	// healed at 13ms — under 5 consecutive strikes at a 1ms period.
	s.K.Schedule(sim.Time(10*time.Millisecond), func() { victim.SetThrottle(4) })
	s.K.Schedule(sim.Time(13*time.Millisecond), func() { victim.Heal() })
	s.K.RunUntil(sim.Time(150 * time.Millisecond))
	f.Stop()
	if f.Mitigations.Value() != 0 {
		t.Errorf("Mitigations = %d, want 0: flap shorter than hysteresis", f.Mitigations.Value())
	}
	if procs[0].Device() != victim {
		t.Error("proclet moved on a transient flap")
	}
}

func TestFaultHookKickBoundsReaction(t *testing.T) {
	s := heteroSys(t, 1)
	// A long 50ms period: without Kick, reaction waits for the tick.
	f := NewFleetConfig(s, "fleet", Config{
		Period:     50 * time.Millisecond,
		Checkpoint: CheckpointConfig{DeltaBytes: 4 << 20, Home: AutoHome},
	})
	gp, err := f.Add("trainer-0", 64<<20, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	inj := fault.New(s.K, s.Cluster, s.Trace)
	inj.HookGPU = func(cluster.MachineID, int) { f.Kick() }
	src := gp.Device()
	inj.Install(fault.Schedule{{
		At: sim.Time(5 * time.Millisecond), Op: fault.OpGPUXid,
		A: src.Machine.ID, Gpu: src.Index, Xid: 79,
	}})
	var restoredAt sim.Time
	s.K.Spawn("probe", func(p *sim.Proc) {
		for gp.Device() == src && p.Now() < sim.Time(200*time.Millisecond) {
			p.Sleep(100 * time.Microsecond)
		}
		restoredAt = p.Now()
	})
	s.K.RunUntil(sim.Time(200 * time.Millisecond))
	f.Stop()
	if gp.Device() == src {
		t.Fatal("never restored")
	}
	// 64 MiB from mirror over the wire + host link ≈ 10 ms; starting
	// at the fault instant (5 ms) lands well inside the first 50 ms
	// period — without Kick the reaction could not even begin before
	// the tick.
	if restoredAt >= sim.Time(50*time.Millisecond) {
		t.Errorf("restored at %v: reaction quantized to the period, Kick not honored", restoredAt)
	}
	if inj.GPUXids.Value() != 1 {
		t.Errorf("GPUXids = %d", inj.GPUXids.Value())
	}
}

func TestAttachTelemetryRegistersGauges(t *testing.T) {
	s := heteroSys(t, 1)
	tel := s.EnableTelemetry(time.Millisecond)
	f := NewFleet(s, "fleet", time.Millisecond)
	gp, err := f.Add("trainer-0", 1<<30, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	f.AttachTelemetry(tel)
	drive(s, gp, 1<<20, 20)
	s.K.RunUntil(sim.Time(100 * time.Millisecond))
	f.Stop()
	if gp.StepLatencyMS() <= 0 || gp.StepSamples() < 20 {
		t.Errorf("step EWMA = %v after %d samples", gp.StepLatencyMS(), gp.StepSamples())
	}
	series := tel.Series()
	var found int
	for _, ts := range series {
		if ts.Name == "gpu.trainer-0.step_ms" || ts.Name == "gpu.trainer-0.qdelay_ms" {
			found++
			if ts.Len() == 0 {
				t.Errorf("series %s sampled no points", ts.Name)
			}
		}
	}
	if found != 2 {
		t.Errorf("found %d gpu telemetry series, want 2", found)
	}
}
