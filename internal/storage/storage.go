// Package storage implements Quicksand's storage resource proclets
// (§3.1) and the flat storage abstraction built on them (§3.2): fine-
// grained storage proclets spread across machines so that an
// application combines their capacity and IOPS, in the style of Flat
// Datacenter Storage.
//
// Each storage proclet fronts a slice of a device with its own
// capacity, per-operation latency, bandwidth, and an IOPS cap modeled
// as minimum spacing between operation starts. Device contents are
// persistent state distinct from machine RAM; the proclet's RAM heap
// holds only metadata, so storage proclets migrate cheaply while the
// device slice is reattached (as with disaggregated flash).
package storage

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/proclet"
	"repro/internal/sim"
)

// Errors returned by storage operations.
var (
	ErrNoSpace    = errors.New("storage: device capacity exceeded")
	ErrNoKey      = errors.New("storage: no such object")
	ErrZeroShards = errors.New("storage: flat store needs at least one proclet")
)

// DeviceConfig describes the device slice behind one storage proclet.
type DeviceConfig struct {
	// CapacityBytes is the device slice's capacity.
	CapacityBytes int64
	// ReadLatency and WriteLatency are per-operation base costs.
	ReadLatency  time.Duration
	WriteLatency time.Duration
	// Bandwidth is the device slice's throughput in bytes/second.
	Bandwidth int64
	// IOPS caps operations per second (0 means uncapped).
	IOPS int64
}

// DefaultDeviceConfig models a slice of datacenter flash.
func DefaultDeviceConfig() DeviceConfig {
	return DeviceConfig{
		CapacityBytes: 64 << 30,
		ReadLatency:   80 * time.Microsecond,
		WriteLatency:  20 * time.Microsecond,
		Bandwidth:     2_000_000_000, // 2 GB/s
		IOPS:          500_000,
	}
}

const (
	methodStRead  = "st.read"
	methodStWrite = "st.write"
	methodStDel   = "st.del"
)

// stEntry is one stored object (metadata only; contents are abstract).
type stEntry struct {
	bytes int64
	val   any
}

type writeReq struct {
	key   string
	val   any
	bytes int64
}

// Proclet is a storage resource proclet.
type Proclet struct {
	sys  *core.System
	pr   *proclet.Proclet
	dev  DeviceConfig
	objs map[string]stEntry
	used int64

	nextFree sim.Time // device serialization + IOPS spacing

	// Reads/Writes count completed operations; OpLatency records
	// end-to-end op times in seconds.
	Reads     metrics.Counter
	Writes    metrics.Counter
	OpLatency *metrics.Histogram
}

// metadataHeap is the RAM footprint of a storage proclet.
const metadataHeap = 16 << 10

// NewProcletOn creates a storage proclet on an explicit machine.
func NewProcletOn(sys *core.System, name string, m cluster.MachineID, dev DeviceConfig) (*Proclet, error) {
	pr, err := sys.Runtime.Spawn(name, m, metadataHeap)
	if err != nil {
		return nil, err
	}
	sp := &Proclet{
		sys:       sys,
		pr:        pr,
		dev:       dev,
		objs:      make(map[string]stEntry),
		OpLatency: metrics.NewHistogram(name + ".oplat"),
	}
	pr.Data = sp
	sys.Sched.RegisterProclet(pr, core.KindStorage)
	sp.registerMethods()
	return sp, nil
}

func (sp *Proclet) registerMethods() {
	sp.pr.Handle(methodStRead, func(ctx *proclet.Ctx, arg proclet.Msg) (proclet.Msg, error) {
		key := arg.Payload.(string)
		e, ok := sp.objs[key]
		if !ok {
			return proclet.Msg{}, fmt.Errorf("%w: %q", ErrNoKey, key)
		}
		sp.deviceOp(ctx.Proc, sp.dev.ReadLatency, e.bytes)
		sp.Reads.Inc()
		return proclet.Msg{Payload: e.val, Bytes: e.bytes}, nil
	})
	sp.pr.Handle(methodStWrite, func(ctx *proclet.Ctx, arg proclet.Msg) (proclet.Msg, error) {
		r := arg.Payload.(*writeReq)
		old, existed := sp.objs[r.key]
		delta := r.bytes
		if existed {
			delta -= old.bytes
		}
		if sp.used+delta > sp.dev.CapacityBytes {
			return proclet.Msg{}, fmt.Errorf("%w: %q needs %d, %d free",
				ErrNoSpace, r.key, r.bytes, sp.dev.CapacityBytes-sp.used)
		}
		sp.deviceOp(ctx.Proc, sp.dev.WriteLatency, r.bytes)
		sp.objs[r.key] = stEntry{bytes: r.bytes, val: r.val}
		sp.used += delta
		sp.Writes.Inc()
		return proclet.Msg{}, nil
	})
	sp.pr.Handle(methodStDel, func(ctx *proclet.Ctx, arg proclet.Msg) (proclet.Msg, error) {
		key := arg.Payload.(string)
		e, ok := sp.objs[key]
		if !ok {
			return proclet.Msg{}, fmt.Errorf("%w: %q", ErrNoKey, key)
		}
		sp.deviceOp(ctx.Proc, sp.dev.WriteLatency, 0)
		delete(sp.objs, key)
		sp.used -= e.bytes
		return proclet.Msg{}, nil
	})
}

// deviceOp charges one device operation: ops serialize on the device,
// spaced at least 1/IOPS apart, each costing latency + bytes/bandwidth.
func (sp *Proclet) deviceOp(p *sim.Proc, lat time.Duration, bytes int64) {
	k := sp.sys.K
	start := k.Now()
	if sp.nextFree > start {
		start = sp.nextFree
	}
	dur := lat
	if sp.dev.Bandwidth > 0 {
		dur += time.Duration(float64(bytes) / float64(sp.dev.Bandwidth) * 1e9)
	}
	end := start.Add(dur)
	// IOPS cap: next op may not start sooner than 1/IOPS after this one.
	sp.nextFree = start.Add(dur)
	if sp.dev.IOPS > 0 {
		minNext := start.Add(time.Duration(1e9 / sp.dev.IOPS))
		if minNext > sp.nextFree {
			sp.nextFree = minNext
		}
	}
	p.SleepUntil(end)
	sp.OpLatency.ObserveDuration(dur)
}

// Proclet returns the underlying proclet.
func (sp *Proclet) Proclet() *proclet.Proclet { return sp.pr }

// ID returns the proclet ID.
func (sp *Proclet) ID() proclet.ID { return sp.pr.ID() }

// Used returns bytes stored on the device slice.
func (sp *Proclet) Used() int64 { return sp.used }

// Capacity returns the device slice capacity.
func (sp *Proclet) Capacity() int64 { return sp.dev.CapacityBytes }

// NumObjects returns the stored object count.
func (sp *Proclet) NumObjects() int { return len(sp.objs) }

// ReadObject fetches an object from this proclet (§3.1's ReadObject).
func (sp *Proclet) ReadObject(p *sim.Proc, from cluster.MachineID, key string) (any, error) {
	res, err := sp.sys.Runtime.Invoke(p, from, 0, sp.pr.ID(), methodStRead,
		proclet.Msg{Payload: key, Bytes: int64(len(key))})
	if err != nil {
		return nil, err
	}
	return res.Payload, nil
}

// WriteObject stores an object (§3.1's WriteObject).
func (sp *Proclet) WriteObject(p *sim.Proc, from cluster.MachineID, key string, val any, bytes int64) error {
	_, err := sp.sys.Runtime.Invoke(p, from, 0, sp.pr.ID(), methodStWrite,
		proclet.Msg{Payload: &writeReq{key: key, val: val, bytes: bytes}, Bytes: bytes})
	return err
}

// DeleteObject removes an object.
func (sp *Proclet) DeleteObject(p *sim.Proc, from cluster.MachineID, key string) error {
	_, err := sp.sys.Runtime.Invoke(p, from, 0, sp.pr.ID(), methodStDel,
		proclet.Msg{Payload: key, Bytes: int64(len(key))})
	return err
}

// Destroy removes the storage proclet.
func (sp *Proclet) Destroy() error {
	return sp.sys.Runtime.Destroy(sp.pr.ID())
}
