package storage

import (
	"fmt"
	"hash/fnv"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/sim"
)

// Flat is the flat storage abstraction (§3.2): objects spread across
// fine-grained storage proclets on multiple machines by key hash, so
// one namespace combines the capacity and IOPS of every slice.
type Flat struct {
	sys   *core.System
	name  string
	procs []*Proclet
}

// NewFlat creates a flat store of n storage proclets, spread round-
// robin across machines.
func NewFlat(sys *core.System, name string, n int, dev DeviceConfig) (*Flat, error) {
	if n < 1 {
		return nil, ErrZeroShards
	}
	f := &Flat{sys: sys, name: name}
	machines := sys.Cluster.Machines()
	for i := 0; i < n; i++ {
		m := machines[i%len(machines)]
		sp, err := NewProcletOn(sys, fmt.Sprintf("%s.st-%d", name, i), m.ID, dev)
		if err != nil {
			for _, prev := range f.procs {
				prev.Destroy()
			}
			return nil, err
		}
		f.procs = append(f.procs, sp)
	}
	return f, nil
}

// procFor routes a key to its storage proclet by hash.
func (f *Flat) procFor(key string) *Proclet {
	h := fnv.New64a()
	h.Write([]byte(key))
	return f.procs[h.Sum64()%uint64(len(f.procs))]
}

// Name returns the store's name.
func (f *Flat) Name() string { return f.name }

// NumProclets returns the number of storage proclets.
func (f *Flat) NumProclets() int { return len(f.procs) }

// Proclets returns the backing storage proclets.
func (f *Flat) Proclets() []*Proclet { return f.procs }

// Capacity returns the combined device capacity.
func (f *Flat) Capacity() int64 {
	var sum int64
	for _, sp := range f.procs {
		sum += sp.Capacity()
	}
	return sum
}

// Used returns total bytes stored.
func (f *Flat) Used() int64 {
	var sum int64
	for _, sp := range f.procs {
		sum += sp.Used()
	}
	return sum
}

// TotalOps returns completed reads+writes across proclets.
func (f *Flat) TotalOps() int64 {
	var sum int64
	for _, sp := range f.procs {
		sum += sp.Reads.Value() + sp.Writes.Value()
	}
	return sum
}

// Read fetches an object.
func (f *Flat) Read(p *sim.Proc, from cluster.MachineID, key string) (any, error) {
	return f.procFor(key).ReadObject(p, from, key)
}

// Write stores an object.
func (f *Flat) Write(p *sim.Proc, from cluster.MachineID, key string, val any, bytes int64) error {
	return f.procFor(key).WriteObject(p, from, key, val, bytes)
}

// Delete removes an object.
func (f *Flat) Delete(p *sim.Proc, from cluster.MachineID, key string) error {
	return f.procFor(key).DeleteObject(p, from, key)
}

// Close destroys every storage proclet.
func (f *Flat) Close() {
	for _, sp := range f.procs {
		sp.Destroy()
	}
	f.procs = nil
}
