package storage

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/sim"
)

func testSys(t *testing.T) *core.System {
	t.Helper()
	return core.NewSystem(core.DefaultConfig(), []cluster.MachineConfig{
		{Cores: 8, MemBytes: 1 << 30},
		{Cores: 8, MemBytes: 1 << 30},
	})
}

func fastDev() DeviceConfig {
	return DeviceConfig{
		CapacityBytes: 1 << 20,
		ReadLatency:   100 * time.Microsecond,
		WriteLatency:  50 * time.Microsecond,
		Bandwidth:     1_000_000_000,
		IOPS:          0,
	}
}

func TestWriteReadDelete(t *testing.T) {
	s := testSys(t)
	sp, err := NewProcletOn(s, "st", 0, fastDev())
	if err != nil {
		t.Fatal(err)
	}
	s.K.Spawn("client", func(p *sim.Proc) {
		if err := sp.WriteObject(p, 0, "k1", "payload", 1000); err != nil {
			t.Fatalf("Write: %v", err)
		}
		v, err := sp.ReadObject(p, 0, "k1")
		if err != nil || v != "payload" {
			t.Errorf("Read = %v, %v", v, err)
		}
		if sp.Used() != 1000 || sp.NumObjects() != 1 {
			t.Errorf("Used=%d NumObjects=%d", sp.Used(), sp.NumObjects())
		}
		if err := sp.DeleteObject(p, 0, "k1"); err != nil {
			t.Fatalf("Delete: %v", err)
		}
		if _, err := sp.ReadObject(p, 0, "k1"); !errors.Is(err, ErrNoKey) {
			t.Errorf("Read deleted = %v", err)
		}
		if sp.Used() != 0 {
			t.Errorf("Used = %d after delete", sp.Used())
		}
	})
	s.K.Run()
}

func TestCapacityEnforced(t *testing.T) {
	s := testSys(t)
	dev := fastDev()
	dev.CapacityBytes = 1000
	sp, _ := NewProcletOn(s, "st", 0, dev)
	s.K.Spawn("client", func(p *sim.Proc) {
		if err := sp.WriteObject(p, 0, "a", nil, 800); err != nil {
			t.Fatalf("Write: %v", err)
		}
		if err := sp.WriteObject(p, 0, "b", nil, 300); !errors.Is(err, ErrNoSpace) {
			t.Errorf("overcommit err = %v", err)
		}
		// Overwrite within capacity is fine.
		if err := sp.WriteObject(p, 0, "a", nil, 900); err != nil {
			t.Errorf("overwrite: %v", err)
		}
	})
	s.K.Run()
}

func TestReadLatencyCharged(t *testing.T) {
	s := testSys(t)
	sp, _ := NewProcletOn(s, "st", 0, fastDev())
	s.K.Spawn("client", func(p *sim.Proc) {
		sp.WriteObject(p, 0, "k", nil, 1_000_000)
		start := p.Now()
		sp.ReadObject(p, 0, "k")
		elapsed := p.Now().Sub(start)
		// 100us latency + 1MB/1GB/s = 1ms transfer = 1.1ms min.
		if elapsed < 1100*time.Microsecond {
			t.Errorf("read took %v, want >= 1.1ms", elapsed)
		}
	})
	s.K.Run()
}

func TestIOPSCapSpacesOps(t *testing.T) {
	s := testSys(t)
	dev := fastDev()
	dev.IOPS = 1000 // 1ms spacing
	dev.ReadLatency = 0
	sp, _ := NewProcletOn(s, "st", 0, dev)
	s.K.Spawn("client", func(p *sim.Proc) {
		sp.WriteObject(p, 0, "k", nil, 10)
		start := p.Now()
		for i := 0; i < 10; i++ {
			sp.ReadObject(p, 0, "k")
		}
		elapsed := p.Now().Sub(start)
		// 10 ops at 1000 IOPS >= ~9ms.
		if elapsed < 9*time.Millisecond {
			t.Errorf("10 ops took %v, want >= 9ms under 1000 IOPS cap", elapsed)
		}
	})
	s.K.Run()
}

func TestFlatSpreadsAcrossMachines(t *testing.T) {
	s := testSys(t)
	f, err := NewFlat(s, "flat", 4, fastDev())
	if err != nil {
		t.Fatal(err)
	}
	locs := map[cluster.MachineID]int{}
	for _, sp := range f.Proclets() {
		locs[sp.Proclet().Location()]++
	}
	if len(locs) != 2 || locs[0] != 2 || locs[1] != 2 {
		t.Errorf("proclet spread = %v, want 2 per machine", locs)
	}
	if f.Capacity() != 4<<20 {
		t.Errorf("Capacity = %d, want 4MiB", f.Capacity())
	}
}

func TestFlatRoutesAndCombinesIOPS(t *testing.T) {
	s := testSys(t)
	dev := fastDev()
	dev.IOPS = 1000
	dev.ReadLatency = 0
	dev.Bandwidth = 0
	f, _ := NewFlat(s, "flat", 4, dev)
	s.K.Spawn("client", func(p *sim.Proc) {
		// Write 32 objects; hashing spreads them over the 4 proclets.
		for i := 0; i < 32; i++ {
			if err := f.Write(p, 0, fmt.Sprintf("key-%d", i), nil, 10); err != nil {
				t.Fatalf("Write: %v", err)
			}
		}
	})
	s.K.Run()
	if f.Used() != 320 || f.TotalOps() != 32 {
		t.Errorf("Used=%d TotalOps=%d", f.Used(), f.TotalOps())
	}
	// Each proclet must have received some share of the keys.
	for i, sp := range f.Proclets() {
		if sp.NumObjects() == 0 {
			t.Errorf("proclet %d received no objects", i)
		}
	}
	// Aggregate IOPS: 32 sequential writes through one proclet at 1000
	// IOPS would take ~31ms; spread over 4, parallel clients would cut
	// that — here a single client serializes, so just verify routing
	// stability: every key reads back from the same proclet.
	s.K.Spawn("reader", func(p *sim.Proc) {
		for i := 0; i < 32; i++ {
			if _, err := f.Read(p, 1, fmt.Sprintf("key-%d", i)); err != nil {
				t.Errorf("Read key-%d: %v", i, err)
			}
		}
	})
	s.K.Run()
}

func TestFlatParallelClientsExceedSingleProcletIOPS(t *testing.T) {
	// The §3.2 claim: spreading storage proclets combines IOPS. Four
	// clients hammering four proclets finish ~4x faster than through
	// one proclet.
	run := func(nProcs int) sim.Time {
		s := testSys(t)
		dev := fastDev()
		dev.IOPS = 10_000 // 100us spacing
		dev.ReadLatency = 0
		dev.Bandwidth = 0
		f, _ := NewFlat(s, "flat", nProcs, dev)
		var done sim.Time
		var wg sim.WaitGroup
		// Preload one key per proclet-ish namespace.
		s.K.Spawn("setup", func(p *sim.Proc) {
			for i := 0; i < 64; i++ {
				f.Write(p, 0, fmt.Sprintf("k-%d", i), nil, 10)
			}
			for c := 0; c < 8; c++ {
				c := c
				wg.Add(1)
				s.K.Spawn("client", func(cp *sim.Proc) {
					for i := 0; i < 100; i++ {
						f.Read(cp, 0, fmt.Sprintf("k-%d", (c*8+i)%64))
					}
					wg.Done()
				})
			}
			wg.Wait(p)
			done = p.Now()
		})
		s.K.Run()
		return done
	}
	one := run(1)
	eight := run(8)
	if float64(one) < 3*float64(eight) {
		t.Errorf("1-proclet %v vs 8-proclet %v: spreading should combine IOPS", one, eight)
	}
}

func TestFlatClose(t *testing.T) {
	s := testSys(t)
	f, _ := NewFlat(s, "flat", 4, fastDev())
	f.Close()
	if f.NumProclets() != 0 {
		t.Errorf("NumProclets = %d after Close", f.NumProclets())
	}
	used := s.Cluster.Machine(0).MemUsed() + s.Cluster.Machine(1).MemUsed()
	if used != 0 {
		t.Errorf("metadata heap leaked: %d", used)
	}
}
