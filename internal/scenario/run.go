package scenario

// The scenario engine: compile a validated Spec onto the partitioned
// simulation kernel and drive it to completion. Each fleet shard gets
// its own core.System, store proclets, open-loop load.Injector, fault
// injector, and server pool — the same shapes as the hand-coded
// internal/experiments drivers, but assembled from data.
//
// Determinism contract: a run at a fixed seed produces byte-identical
// reports at any host worker count. Everything in Outcome is derived
// from kernel-ordered integers (counts, histogram buckets, virtual
// timestamps); golden records are only walked via sorted keys; shard
// results merge in fixed shard order; wall-clock never appears.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/gpu"
	"repro/internal/load"
	"repro/internal/metrics"
	"repro/internal/obs/slo"
	"repro/internal/proclet"
	"repro/internal/replication"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Options are the per-invocation knobs that do not change the
// scenario's identity: which seed to run and how many host workers to
// use. Neither may leak into the report (Seed is echoed deliberately;
// Par must not be).
type Options struct {
	Seed int64 // 0 → the spec's committed seed
	Par  int   // host worker count; <=0 → 1

	// KeepWindows retains every closed SLO window per shard in
	// Outcome.SLOHistory — the data behind qsctl top. Off by default;
	// it is O(windows) memory.
	KeepWindows bool
}

// AssertResult is one evaluated assertion.
type AssertResult struct {
	Metric string  `json:"metric"`
	Op     string  `json:"op"`
	Bound  float64 `json:"bound"`
	Got    float64 `json:"got"`
	Pass   bool    `json:"pass"`
}

// Outcome is everything a finished run produced: the full metric set,
// the merged latency histogram, per-assertion verdicts, and the merged
// control-plane trace.
type Outcome struct {
	Spec    *Spec
	Seed    int64
	Metrics map[string]float64
	Hist    *metrics.LogHistogram
	Asserts []AssertResult
	Pass    bool
	Trace   []string

	// SLO plane results: incidents in shard order, the merged flight
	// recorder timeline (always populated — it backs failure dumps),
	// and per-shard window history when Options.KeepWindows is set.
	Incidents     []slo.Incident
	Flight        []slo.FlightEntry
	FlightDropped int
	SLOHistory    [][]slo.WindowStat
}

// injWindows sizes the injector batch window in lookahead units, as in
// the ext-serve experiment (125 x 2us lookahead = 250us windows).
const injWindows = 125

// verifyChunk bounds ids per read-back GetBatch during verification.
const verifyChunk = 64

// serverPoll is the server idle-queue poll interval.
const serverPoll = 20 * time.Microsecond

// mst converts scenario milliseconds to virtual time.
func mst(ms float64) sim.Time { return sim.Time(ms * 1e6) }

// msd converts scenario milliseconds to a duration.
func msd(ms float64) time.Duration { return time.Duration(ms * 1e6) }

// writeVal is the value stored under an object id — a pure function of
// the id, so replays, rebuilds, and verification all agree without
// coordination.
func writeVal(id uint64) int64 { return int64(id ^ 0x9e3779b97f4a7c15) }

// shardState is one shard's mutable run state. Written only in shard
// context (procs on that shard's kernel), read host-side after the run.
type shardState struct {
	sys      *core.System
	rm       *core.ReplManager
	in       *fault.Injector
	stores   []*core.MemoryProclet
	golden   []map[uint64]struct{}
	inj      *load.Injector
	fleet    *gpu.Fleet
	trainers []*gpu.Proclet

	queue []load.Request
	qhead int

	served   uint64
	timeouts uint64
	errs     uint64
	acked    uint64
	lost     int64
	migOK    int64
	startNS  int64
	hist     *metrics.LogHistogram
	good     []int64 // goodput buckets: on-deadline completions by completion time
	done     bool

	mon    *slo.Monitor        // nil unless the spec declares an slo block
	flight *slo.FlightRecorder // always on: backs failure dumps
}

// Run executes the scenario and evaluates its assertions. The returned
// error covers run-level failures (a wedged shard); assertion failures
// land in Outcome.Pass, not the error.
func Run(sp *Spec, opt Options) (*Outcome, error) {
	seed := opt.Seed
	if seed == 0 {
		seed = sp.Seed
	}
	par := opt.Par
	if par <= 0 {
		par = 1
	}
	f, w := sp.Fleet, sp.Workload
	horizon := mst(sp.HorizonMS)
	drain := mst(sp.DrainMS)
	deadline := int64(w.DeadlineUS * 1e3)
	bucketNS := int64(sp.BucketMS * 1e6)
	nBuckets := int((int64(horizon)+int64(drain))/bucketNS) + 2

	lookahead := sim.Time(core.DefaultConfig().Net.Latency.Nanoseconds())
	pk := sim.NewParKernel(seed, f.Shards, lookahead)
	defer pk.Close()
	pk.SetWorkers(par)
	injWindow := time.Duration(lookahead) * injWindows

	machines := make([]cluster.MachineConfig, f.Machines)
	for i := range machines {
		machines[i] = cluster.MachineConfig{Cores: float64(f.Cores), MemBytes: f.MemMB << 20}
	}

	// One zeta precompute per tenant serves every shard.
	zipfs := make([]*load.Zipf, len(w.Tenants))
	for i, t := range w.Tenants {
		zipfs[i] = load.NewZipf(t.Keys, t.Zipf)
	}

	// Compile the event schedule into per-shard fault schedules, spike
	// multipliers per tenant, and per-shard migration lists.
	type migration struct {
		at    sim.Time
		store int // shard-local store index
		to    int // shard-local machine
	}
	faults := make([]fault.Schedule, f.Shards)
	migs := make([][]migration, f.Shards)
	spikes := make(map[string][]func(sim.Time) float64)
	for _, ev := range sp.Events {
		at := mst(ev.AtMS)
		switch ev.Kind {
		case KindCrash, KindRestart:
			s := ev.Machine / f.Machines
			op := fault.OpCrash
			if ev.Kind == KindRestart {
				op = fault.OpRestart
			}
			faults[s] = append(faults[s], fault.Event{
				At: at, Op: op, A: cluster.MachineID(ev.Machine % f.Machines)})
		case KindPartition, KindDegrade, KindHeal:
			s := ev.A / f.Machines
			op := fault.OpPartition
			switch ev.Kind {
			case KindDegrade:
				op = fault.OpDegrade
			case KindHeal:
				op = fault.OpHeal
			}
			faults[s] = append(faults[s], fault.Event{
				At: at, Op: op,
				A:     cluster.MachineID(ev.A % f.Machines),
				B:     cluster.MachineID(ev.B % f.Machines),
				Extra: time.Duration(ev.ExtraUS * 1e3),
				Drop:  ev.Drop,
			})
		case KindSpike:
			spikes[ev.Tenant] = append(spikes[ev.Tenant],
				load.Spike(at, msd(ev.RampMS), msd(ev.HoldMS), msd(ev.DecayMS), ev.Mult))
		case KindMigrate:
			s := ev.Store / w.Stores
			migs[s] = append(migs[s], migration{
				at: at, store: ev.Store % w.Stores, to: ev.To % f.Machines})
		case KindGPUXid, KindGPUThrottle, KindGPUHeal:
			s := ev.Machine / f.Machines
			op := fault.OpGPUXid
			switch ev.Kind {
			case KindGPUThrottle:
				op = fault.OpGPUThrottle
			case KindGPUHeal:
				op = fault.OpGPUHeal
			}
			faults[s] = append(faults[s], fault.Event{
				At: at, Op: op,
				A:          cluster.MachineID(ev.Machine % f.Machines),
				Gpu:        ev.GPU,
				Xid:        ev.Xid,
				Factor:     ev.Factor,
				StallEvery: ev.StallEveryN,
				Stall:      time.Duration(ev.StallUS * 1e3),
			})
		}
	}

	shards := make([]*shardState, f.Shards)
	for s := 0; s < f.Shards; s++ {
		sysCfg := core.DefaultConfig()
		sysCfg.Seed = seed + int64(s)
		sys := core.NewSystemOnKernel(pk.Shard(s), sysCfg, machines)
		shards[s] = &shardState{
			sys:  sys,
			hist: metrics.NewLogHistogram(fmt.Sprintf("s%d.lat", s)),
			good: make([]int64, nBuckets),
		}
	}

	for s := 0; s < f.Shards; s++ {
		s := s
		st := shards[s]
		k := pk.Shard(s)
		st.sys.Start()

		// The fault plane is installed on every shard — even those with no
		// scheduled faults — so RPC timeout behavior is uniform fleet-wide.
		st.in = fault.New(k, st.sys.Cluster, st.sys.Trace)
		st.sys.AttachInjector(st.in)

		// Flight recorder: every control-plane event lands in the ring,
		// so assertion failures dump the last moments of context.
		st.flight = slo.NewFlightRecorder(64)
		st.flight.AttachLog(st.sys.Trace)

		// The streaming SLO plane, when declared: fleet-wide rate floors
		// split across shards the same way tenant rates do.
		if sp.SLO.Enabled() {
			rules := make([]slo.Rule, len(sp.SLO.Rules))
			for i, r := range sp.SLO.Rules {
				rules[i] = slo.Rule{
					Kind:     slo.RuleKind(r.Kind),
					Name:     r.Name,
					BoundMS:  r.BoundMS,
					FloorRPS: r.FloorRPS / float64(f.Shards),
					Ceiling:  r.Ceiling,
					For:      r.For,
					Severity: r.Severity,
				}
			}
			st.mon = slo.New(slo.Config{
				Window:      mst(sp.SLO.WindowMS),
				Windows:     sp.SLO.Windows,
				Rules:       rules,
				Subject:     fmt.Sprintf("s%d", s),
				Machine:     -1,
				KeepHistory: opt.KeepWindows,
			})
			st.mon.Log = st.sys.Trace
			st.mon.Flight = st.flight
		}

		// GPUs attach to every non-front-end machine; machine 0 stays a
		// pure serving front end.
		if len(f.GPUs) > 0 {
			cfgs := make([]cluster.GPUConfig, len(f.GPUs))
			for i, c := range f.GPUs {
				cfgs[i] = cluster.GPUConfig{
					Count:         c.Count,
					MemBytes:      c.MemMB << 20,
					LinkBandwidth: int64(c.LinkGBps * 1e9),
					Class:         c.Class,
					Speed:         c.Speed,
				}
			}
			for _, m := range st.sys.Cluster.Machines() {
				if m.ID != 0 {
					m.AddGPUs(cfgs...)
				}
			}
		}
		if w.RF >= 2 {
			st.rm = st.sys.EnableReplicationPlane(replication.Config{}, 0)
		}

		// Stores round-robin over machines 1..Machines-1; machine 0 is the
		// shard front end (servers + failure-detector monitor).
		st.stores = make([]*core.MemoryProclet, w.Stores)
		st.golden = make([]map[uint64]struct{}, w.Stores)
		for i := range st.stores {
			mid := cluster.MachineID(1 + i%(f.Machines-1))
			mp, err := core.NewMemoryProcletOn(st.sys, fmt.Sprintf("s%d-store-%d", s, i), mid)
			if err != nil {
				return nil, fmt.Errorf("scenario %q: shard %d store %d: %w", sp.Name, s, i, err)
			}
			st.stores[i] = mp
			st.golden[i] = make(map[uint64]struct{}, w.Objects)
			for id := 0; id < w.Objects; id++ {
				st.golden[i][uint64(id)] = struct{}{}
			}
			if w.RF >= 2 {
				if err := st.rm.Replicate(mp, w.RF); err != nil {
					return nil, fmt.Errorf("scenario %q: replicate shard %d store %d: %w", sp.Name, s, i, err)
				}
			}
		}
		if w.RF == 1 && w.Rebuild {
			st.sys.SetRebuilder(func(p *sim.Proc, mp *core.MemoryProclet) error {
				for i, sp2 := range st.stores {
					if sp2.ID() != mp.ID() {
						continue
					}
					keys := sortedKeys(st.golden[i])
					ids := make([]uint64, len(keys))
					vals := make([]any, len(keys))
					sizes := make([]int64, len(keys))
					for j, kk := range keys {
						ids[j], vals[j], sizes[j] = kk, writeVal(kk), w.ObjectBytes
					}
					return mp.PutBatch(p, 0, ids, vals, sizes)
				}
				return nil
			})
		}
		st.in.Install(faults[s])

		// GPU training riders: a fleet manager places each trainer on the
		// best device, reacts to XIDs/reclaims/stragglers, and fault hooks
		// kick its watcher so reactions aren't quantized to the period.
		if w.Trainers.Count > 0 {
			st.fleet = gpu.NewFleetConfig(st.sys, fmt.Sprintf("s%d-trainers", s), gpu.Config{
				Checkpoint: gpu.CheckpointConfig{
					DeltaBytes:    w.Trainers.CheckpointKB << 10,
					SnapshotEvery: w.Trainers.SnapshotEvery,
					Home:          gpu.AutoHome,
				},
			})
			for ti := 0; ti < w.Trainers.Count; ti++ {
				tp, err := st.fleet.Add(fmt.Sprintf("s%d-trainer-%d", s, ti),
					w.Trainers.ModelMB<<20, time.Duration(w.Trainers.StepUS*1e3))
				if err != nil {
					return nil, fmt.Errorf("scenario %q: shard %d trainer %d: %w", sp.Name, s, ti, err)
				}
				st.trainers = append(st.trainers, tp)
			}
			fleet := st.fleet
			st.in.HookGPU = func(cluster.MachineID, int) { fleet.Kick() }
			fleet.Start()
			for ti, tp := range st.trainers {
				tp := tp
				k.Spawn(fmt.Sprintf("s%d-trainer-%d-driver", s, ti), func(p *sim.Proc) {
					for p.Now() < horizon {
						err := tp.Step(p, tp.Device().Machine.ID, w.Trainers.BatchKB<<10)
						if err == nil {
							continue
						}
						if errors.Is(err, proclet.ErrDead) {
							return
						}
						// Device lost mid-stream: park until the fleet
						// re-places the proclet, then resume stepping.
						if tp.AwaitPlaced(p) != nil {
							return
						}
					}
				})
			}
		}

		// The shard's open-loop arrival stream: each tenant's fleet rate is
		// split evenly across shards, spike events multiply onto the base
		// curve, and the whole thing is pre-sampled into a piecewise curve.
		st.inj = load.NewInjector(k, injWindow, func(r load.Request) {
			st.queue = append(st.queue, r)
		})
		for ti, t := range w.Tenants {
			per := t.Rate / float64(f.Shards)
			var base func(sim.Time) float64
			switch t.Curve {
			case "diurnal":
				base = load.Diurnal(per, t.Amp, msd(t.PeriodMS))
			case "ramp":
				base = load.Ramp(per, t.To/float64(f.Shards), msd(t.OverMS))
			default:
				base = func(sim.Time) float64 { return per }
			}
			mults := spikes[t.Name]
			rate := base
			if len(mults) > 0 {
				rate = func(at sim.Time) float64 {
					v := base(at)
					for _, m := range mults {
						v *= m(at)
					}
					return v
				}
			}
			st.inj.AddTenant(t.Name, load.Sampled(horizon, msd(w.SampleStepMS), rate), zipfs[ti])
		}

		// Preload, then start injection at a deterministic virtual instant.
		k.Spawn(fmt.Sprintf("s%d-setup", s), func(p *sim.Proc) {
			ids := make([]uint64, w.Objects)
			vals := make([]any, w.Objects)
			sizes := make([]int64, w.Objects)
			for i := range ids {
				ids[i] = uint64(i)
				vals[i] = writeVal(uint64(i))
				sizes[i] = w.ObjectBytes
			}
			for _, mp := range st.stores {
				if err := mp.PutBatch(p, 0, ids, vals, sizes); err != nil {
					panic(fmt.Sprintf("scenario preload: %v", err))
				}
			}
			st.startNS = int64(p.Now())
			st.inj.Start(p.Now(), horizon)
		})

		// Server pool: batched fan-in per store, reads via GetBatch and
		// writes via PutBatch. A request is a write iff its key falls in
		// the write fraction; writes land under scrambled keys and join the
		// golden record on ack.
		var wg sim.WaitGroup
		writeCut := uint64(w.WriteFrac * 1000)
		for srv := 0; srv < w.Servers; srv++ {
			wg.Add(1)
			k.Spawn(fmt.Sprintf("s%d-server-%d", s, srv), func(p *sim.Proc) {
				defer wg.Done()
				readIDs := make([][]uint64, w.Stores)
				writeIDs := make([][]uint64, w.Stores)
				batch := make([]load.Request, 0, w.BatchMax)
				for {
					if st.qhead == len(st.queue) {
						if p.Now() >= horizon {
							return
						}
						p.Sleep(serverPoll)
						continue
					}
					n := len(st.queue) - st.qhead
					if n > w.BatchMax {
						n = w.BatchMax
					}
					batch = append(batch[:0], st.queue[st.qhead:st.qhead+n]...)
					st.qhead += n
					for i := range readIDs {
						readIDs[i] = readIDs[i][:0]
						writeIDs[i] = writeIDs[i][:0]
					}
					for _, r := range batch {
						si := int(r.Key % uint64(w.Stores))
						if r.Key%1000 < writeCut {
							writeIDs[si] = append(writeIDs[si], load.ScrambleKey(r.Key))
						} else {
							readIDs[si] = append(readIDs[si], r.Key%uint64(w.Objects))
						}
					}
					for si := range st.stores {
						if ids := readIDs[si]; len(ids) > 0 {
							if _, _, err := st.stores[si].GetBatch(p, 0, ids); err != nil {
								st.errs += uint64(len(ids))
							}
						}
						if ids := writeIDs[si]; len(ids) > 0 {
							vals := make([]any, len(ids))
							sizes := make([]int64, len(ids))
							for j, id := range ids {
								vals[j] = writeVal(id)
								sizes[j] = w.ObjectBytes
							}
							if err := st.stores[si].PutBatch(p, 0, ids, vals, sizes); err != nil {
								st.errs += uint64(len(ids))
							} else {
								for _, id := range ids {
									st.golden[si][id] = struct{}{}
								}
								st.acked += uint64(len(ids))
							}
						}
					}
					now := p.Now()
					for _, r := range batch {
						lat := int64(now - r.At)
						st.hist.Record(lat)
						// The SLO plane covers the scenario horizon:
						// completions during the drain are backlog
						// clearing, not steady-state service.
						if now < horizon {
							st.mon.Observe(now, lat, lat > deadline)
						}
						st.served++
						if lat > deadline {
							st.timeouts++
						} else {
							bi := int(int64(now) / bucketNS)
							if bi >= len(st.good) {
								bi = len(st.good) - 1
							}
							st.good[bi]++
						}
					}
				}
			})
		}

		// Timed migrations ride their own sleeper procs.
		for mi, m := range migs[s] {
			m := m
			k.Spawn(fmt.Sprintf("s%d-migrate-%d", s, mi), func(p *sim.Proc) {
				p.Sleep(time.Duration(m.at))
				if err := st.sys.Runtime.Migrate(p, st.stores[m.store].ID(), cluster.MachineID(m.to)); err == nil {
					st.migOK++
				}
			})
		}

		// Durability verification: once the servers drain, read back every
		// golden key (sorted, chunked) and count what the fleet lost.
		k.Spawn(fmt.Sprintf("s%d-verify", s), func(p *sim.Proc) {
			wg.Wait(p)
			for si, mp := range st.stores {
				keys := sortedKeys(st.golden[si])
				for off := 0; off < len(keys); off += verifyChunk {
					end := off + verifyChunk
					if end > len(keys) {
						end = len(keys)
					}
					chunk := keys[off:end]
					ids, vals, err := mp.GetBatch(p, 0, chunk)
					if err != nil {
						st.lost += int64(len(chunk))
						continue
					}
					got := make(map[uint64]int64, len(ids))
					for j, id := range ids {
						if v, ok := vals[j].(int64); ok {
							got[id] = v
						}
					}
					for _, id := range chunk {
						if v, ok := got[id]; !ok || v != writeVal(id) {
							st.lost++
						}
					}
				}
			}
			st.done = true
		})
	}

	pk.RunUntil(horizon + drain)

	for s, st := range shards {
		if !st.done {
			return nil, fmt.Errorf("scenario %q: shard %d did not drain by %v (%d served of %d generated) — raise drain_ms or heal the fleet before the horizon",
				sp.Name, s, horizon+drain, st.served, st.inj.TotalGenerated())
		}
	}

	return collect(sp, seed, pk, shards, bucketNS)
}

// collect folds per-shard state into the Outcome, in fixed shard order.
func collect(sp *Spec, seed int64, pk *sim.ParKernel, shards []*shardState, bucketNS int64) (*Outcome, error) {
	var generated, served, timeouts, errs, acked uint64
	var lost, migOK, crashes, restarts, partitions, degrades, heals, promotions, recoveries int64
	var gpuXids, gpuThrottles, gpuHeals, gpuRestores, gpuEvacs, gpuMitigations, gpuStranded int64
	var trainerSteps, checkpoints, lostSteps int64
	var sloWindows, sloBreaches, incOpened, incResolved, incOpen int
	var events uint64
	startNS := int64(0)
	hist := metrics.NewLogHistogram("latency")
	good := make([]int64, len(shards[0].good))
	var incidents []slo.Incident
	var sloHistory [][]slo.WindowStat
	flightSnaps := make([][]slo.FlightEntry, len(shards))
	flightDropped := 0
	horizonT := mst(sp.HorizonMS)
	for s, st := range shards {
		// Seal the SLO plane at the horizon: trailing empty windows
		// close (a tail outage still breaches), incidents still open
		// get their spans clamped.
		st.mon.Finish(horizonT)
		sloWindows += st.mon.WindowsClosed()
		sloBreaches += st.mon.Breaches()
		incOpened += st.mon.Opened()
		incResolved += st.mon.Resolved()
		incOpen += st.mon.OpenCount()
		incidents = append(incidents, st.mon.Incidents()...)
		if h := st.mon.History(); h != nil {
			sloHistory = append(sloHistory, h)
		}
		flightSnaps[s] = st.flight.Snapshot()
		flightDropped += st.flight.Dropped()
	}
	for s, st := range shards {
		generated += st.inj.TotalGenerated()
		served += st.served
		timeouts += st.timeouts
		errs += st.errs
		acked += st.acked
		lost += st.lost
		migOK += st.migOK
		crashes += st.in.Crashes.Value()
		restarts += st.in.Restarts.Value()
		partitions += st.in.Partitions.Value()
		degrades += st.in.Degrades.Value()
		heals += st.in.Heals.Value()
		if st.rm != nil {
			promotions += st.rm.Promotions.Value()
		}
		recoveries += st.sys.Sched.Recoveries.Value()
		gpuXids += st.in.GPUXids.Value()
		gpuThrottles += st.in.GPUThrottles.Value()
		gpuHeals += st.in.GPUHeals.Value()
		if st.fleet != nil {
			gpuRestores += st.fleet.Restores.Value()
			gpuEvacs += st.fleet.Evacuations.Value()
			gpuMitigations += st.fleet.Mitigations.Value()
			gpuStranded += st.fleet.Stranded.Value()
			lostSteps += st.fleet.LostSteps()
			for _, tp := range st.trainers {
				trainerSteps += tp.CompletedSteps()
				checkpoints += tp.Checkpoints.Value()
			}
		}
		if st.startNS > startNS {
			startNS = st.startNS
		}
		events += pk.Shard(s).EventsProcessed()
		hist.Merge(st.hist)
		for i, v := range st.good {
			good[i] += v
		}
	}

	horizon := int64(mst(sp.HorizonMS))
	durS := float64(horizon-startNS) / 1e9
	goodput := 0.0
	if durS > 0 {
		goodput = float64(served-timeouts) / durS
	}
	timeoutFrac := 0.0
	if served > 0 {
		timeoutFrac = float64(timeouts) / float64(served)
	}

	m := map[string]float64{
		"generated":    float64(generated),
		"served":       float64(served),
		"timeouts":     float64(timeouts),
		"timeout_frac": timeoutFrac,
		"errors":       float64(errs),
		"goodput_rps":  goodput,
		"p50_ms":       hist.QuantileMS(0.50),
		"p99_ms":       hist.QuantileMS(0.99),
		"p999_ms":      hist.QuantileMS(0.999),
		"max_ms":       float64(hist.Max()) / 1e6,
		"mean_ms":      hist.Mean() / 1e6,
		"acked_writes": float64(acked),
		"lost":         float64(lost),
		"crashes":      float64(crashes),
		"restarts":     float64(restarts),
		"partitions":   float64(partitions),
		"degrades":     float64(degrades),
		"heals":        float64(heals),
		"promotions":   float64(promotions),
		"recoveries":   float64(recoveries),
		"migrations":   float64(migOK),
		"recovery_ms":  recoveryMS(sp, good, bucketNS, startNS, horizon),
		"events":       float64(events),
		"windows":      float64(pk.Windows()),

		"gpu_xids":        float64(gpuXids),
		"gpu_throttles":   float64(gpuThrottles),
		"gpu_heals":       float64(gpuHeals),
		"gpu_restores":    float64(gpuRestores),
		"gpu_evacuations": float64(gpuEvacs),
		"gpu_mitigations": float64(gpuMitigations),
		"gpu_stranded":    float64(gpuStranded),
		"trainer_steps":   float64(trainerSteps),
		"checkpoints":     float64(checkpoints),
		"lost_steps":      float64(lostSteps),

		"slo_windows":        float64(sloWindows),
		"slo_breaches":       float64(sloBreaches),
		"incidents_opened":   float64(incOpened),
		"incidents_resolved": float64(incResolved),
		"incidents_open":     float64(incOpen),
	}

	out := &Outcome{
		Spec: sp, Seed: seed, Metrics: m, Hist: hist, Pass: true,
		Incidents:     incidents,
		Flight:        slo.MergeSnapshots(flightSnaps...),
		FlightDropped: flightDropped,
		SLOHistory:    sloHistory,
	}
	for _, a := range sp.Asserts {
		got := m[a.Metric]
		ok := evalOp(got, a.Op, a.Value)
		out.Asserts = append(out.Asserts, AssertResult{
			Metric: a.Metric, Op: a.Op, Bound: a.Value, Got: got, Pass: ok})
		if !ok {
			out.Pass = false
		}
	}
	logs := make([]*trace.Log, len(shards))
	for s, st := range shards {
		logs[s] = st.sys.Trace
	}
	for _, e := range trace.Merge(logs...).Events() {
		out.Trace = append(out.Trace, e.String())
	}
	return out, nil
}

// recoveryMS measures how long after the last scheduled disturbance
// goodput regained RecoveryFrac of its pre-event baseline. 0 when the
// scenario has no events or no measurable baseline; NeverRecovered when
// no in-horizon bucket after the last event reaches the threshold.
func recoveryMS(sp *Spec, good []int64, bucketNS, startNS, horizon int64) float64 {
	if len(sp.Events) == 0 {
		return 0
	}
	firstNS := int64(mst(sp.Events[0].AtMS))
	lastEnd := int64(0)
	for _, ev := range sp.Events {
		if e := int64(mst(ev.EndMS())); e > lastEnd {
			lastEnd = e
		}
	}
	var sum int64
	var n int
	for i := range good {
		bs, be := int64(i)*bucketNS, int64(i+1)*bucketNS
		if bs >= startNS+bucketNS && be <= firstNS {
			sum += good[i]
			n++
		}
	}
	if n == 0 || sum == 0 {
		return 0
	}
	threshold := sp.RecoveryFrac * float64(sum) / float64(n)
	for i := range good {
		bs, be := int64(i)*bucketNS, int64(i+1)*bucketNS
		if bs < lastEnd || be > horizon {
			continue
		}
		if float64(good[i]) >= threshold {
			return float64(bs-lastEnd) / 1e6
		}
	}
	return NeverRecovered
}

func evalOp(got float64, op string, bound float64) bool {
	switch op {
	case "==":
		return got == bound
	case "!=":
		return got != bound
	case "<":
		return got < bound
	case "<=":
		return got <= bound
	case ">":
		return got > bound
	case ">=":
		return got >= bound
	}
	return false
}

// fmtMetric renders a metric value for the human report. Counts print
// as integers; NeverRecovered prints as "never".
func fmtMetric(name string, v float64) string {
	if name == "recovery_ms" && v >= NeverRecovered {
		return "never"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.4f", v)
}

// WriteReport renders the deterministic human-readable report: spec
// echo, the full metric set in fixed order, and per-assertion verdicts.
func (o *Outcome) WriteReport(w io.Writer) {
	f, wl := o.Spec.Fleet, o.Spec.Workload
	fmt.Fprintf(w, "scenario %s (seed %d)\n", o.Spec.Name, o.Seed)
	if o.Spec.Description != "" {
		fmt.Fprintf(w, "  %s\n", o.Spec.Description)
	}
	fmt.Fprintf(w, "fleet: %d shards x %d machines = %d machines; %d stores rf=%d + %d servers per shard\n",
		f.Shards, f.Machines, f.Shards*f.Machines, wl.Stores, wl.RF, wl.Servers)
	if wl.Trainers.Count > 0 {
		fmt.Fprintf(w, "gpus: %d classes x %d devices per worker machine; %d trainers (model %d MB, ckpt %d KB) per shard\n",
			len(f.GPUs), f.GPUsPerMachine(), wl.Trainers.Count, wl.Trainers.ModelMB, wl.Trainers.CheckpointKB)
	}
	fmt.Fprintf(w, "horizon %gms, drain %gms, %d tenants, %d events, %d assertions\n",
		o.Spec.HorizonMS, o.Spec.DrainMS, len(wl.Tenants), len(o.Spec.Events), len(o.Spec.Asserts))
	for _, ev := range o.Spec.Events {
		fmt.Fprintf(w, "  event: %s\n", ev)
	}
	if o.Spec.SLO.Enabled() {
		fmt.Fprintf(w, "slo: %gms windows, burn-rate ring %d, %d rules; %d windows closed, %d breaches\n",
			o.Spec.SLO.WindowMS, o.Spec.SLO.Windows, len(o.Spec.SLO.Rules),
			int(o.Metrics["slo_windows"]), int(o.Metrics["slo_breaches"]))
		for _, inc := range o.Incidents {
			closeCol := fmt.Sprintf("%.1fms", float64(inc.CloseAt)/1e6)
			if inc.Open {
				closeCol = "open"
			}
			cause := inc.Cause
			if cause == "" {
				cause = "-"
			}
			fmt.Fprintf(w, "  incident [%s] %s %s: %.1fms -> %s cause=%s\n",
				inc.Severity, inc.Subject, inc.Rule, float64(inc.OpenAt)/1e6, closeCol, cause)
		}
	}
	fmt.Fprintf(w, "latency: %s\n", o.Hist.String())
	for _, name := range MetricNames {
		fmt.Fprintf(w, "  %-15s %s\n", name, fmtMetric(name, o.Metrics[name]))
	}
	for _, a := range o.Asserts {
		verdict := "PASS"
		if !a.Pass {
			verdict = "FAIL"
		}
		fmt.Fprintf(w, "assert %s: %s %s %s (got %s)\n",
			verdict, a.Metric, a.Op, fmtMetric(a.Metric, a.Bound), fmtMetric(a.Metric, a.Got))
	}
	if o.Pass {
		fmt.Fprintf(w, "RESULT PASS: %d/%d assertions hold (%d kernel events)\n",
			len(o.Asserts), len(o.Asserts), uint64(o.Metrics["events"]))
	} else {
		failed := 0
		for _, a := range o.Asserts {
			if !a.Pass {
				failed++
			}
		}
		fmt.Fprintf(w, "RESULT FAIL: %d/%d assertions violated (%d kernel events)\n",
			failed, len(o.Asserts), uint64(o.Metrics["events"]))
	}
}

// jsonReport is the machine-readable failure report shape.
type jsonReport struct {
	Scenario   string             `json:"scenario"`
	Seed       int64              `json:"seed"`
	Pass       bool               `json:"pass"`
	Metrics    map[string]float64 `json:"metrics"`
	Assertions []AssertResult     `json:"assertions"`
	Incidents  []slo.Incident     `json:"incidents,omitempty"`
}

// WriteJSON writes the machine-readable report (metrics keys sorted by
// the marshaler, so the bytes are deterministic).
func (o *Outcome) WriteJSON(w io.Writer) error {
	asserts := o.Asserts
	if asserts == nil {
		asserts = []AssertResult{}
	}
	b, err := json.MarshalIndent(jsonReport{
		Scenario:   o.Spec.Name,
		Seed:       o.Seed,
		Pass:       o.Pass,
		Metrics:    o.Metrics,
		Assertions: asserts,
		Incidents:  o.Incidents,
	}, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(b, '\n'))
	return err
}

// WriteFlightDump renders the merged flight-recorder timeline — the
// artifact qsctl run saves when assertions fail or an incident opened.
func (o *Outcome) WriteFlightDump(w io.Writer) error {
	title := fmt.Sprintf("%s seed %d", o.Spec.Name, o.Seed)
	return slo.WriteDump(w, title, o.Flight, o.FlightDropped)
}
