// Package scenario compiles declarative scenario files — fleet specs,
// workload mixes, timed fault/load schedules, and assertions — into
// seeded, deterministic runs on the partitioned simulation kernel.
//
// A scenario is a small YAML-subset document (see Parse) instead of a
// Go experiment: the growth path for scenario breadth is adding a data
// file under scenarios/, not writing another internal/experiments
// driver. The subset is parsed by this file's hand-rolled parser so
// go.mod stays dependency-free. Supported syntax:
//
//   - mappings:   `key: value` scalars, or `key:` followed by an
//     indented block (mapping or sequence)
//   - sequences:  `- item` scalar items, or `- key: value` mapping
//     items whose remaining keys sit two spaces deeper
//   - scalars:    bare tokens or double-quoted strings with \" \\ \n
//     \t escapes; numbers and booleans are typed at decode time
//   - comments:   `#` to end of line (outside quotes)
//
// Indentation is spaces only; tabs are a parse error. Every parse and
// decode error carries the 1-based source line, so a broken scenario
// file points at itself.
package scenario

import (
	"fmt"
	"strconv"
	"strings"
)

// node is one parsed value: a scalar, a mapping (keys in file order),
// or a sequence.
type node struct {
	line     int
	isScalar bool
	isSeq    bool
	scalar   string
	keys     []string
	vals     []*node
	items    []*node
}

// kindName names the node's shape for error messages.
func (n *node) kindName() string {
	switch {
	case n.isScalar:
		return "scalar"
	case n.isSeq:
		return "sequence"
	default:
		return "mapping"
	}
}

// get returns the mapping value for key, or nil.
func (n *node) get(key string) *node {
	for i, k := range n.keys {
		if k == key {
			return n.vals[i]
		}
	}
	return nil
}

// strVal decodes the node as a string scalar.
func (n *node) strVal(ctx string) (string, error) {
	if !n.isScalar {
		return "", fmt.Errorf("%s: expected a string, got a %s (line %d)", ctx, n.kindName(), n.line)
	}
	return n.scalar, nil
}

// floatVal decodes the node as a number.
func (n *node) floatVal(ctx string) (float64, error) {
	if !n.isScalar {
		return 0, fmt.Errorf("%s: expected a number, got a %s (line %d)", ctx, n.kindName(), n.line)
	}
	v, err := strconv.ParseFloat(n.scalar, 64)
	if err != nil {
		return 0, fmt.Errorf("%s: expected a number, got %q (line %d)", ctx, n.scalar, n.line)
	}
	return v, nil
}

// intVal decodes the node as an integer.
func (n *node) intVal(ctx string) (int64, error) {
	if !n.isScalar {
		return 0, fmt.Errorf("%s: expected an integer, got a %s (line %d)", ctx, n.kindName(), n.line)
	}
	v, err := strconv.ParseInt(n.scalar, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("%s: expected an integer, got %q (line %d)", ctx, n.scalar, n.line)
	}
	return v, nil
}

// boolVal decodes the node as true/false.
func (n *node) boolVal(ctx string) (bool, error) {
	if n.isScalar {
		switch n.scalar {
		case "true":
			return true, nil
		case "false":
			return false, nil
		}
	}
	what := n.kindName()
	if n.isScalar {
		what = fmt.Sprintf("%q", n.scalar)
	}
	return false, fmt.Errorf("%s: expected true or false, got %s (line %d)", ctx, what, n.line)
}

// srcLine is one significant source line after comment stripping.
type srcLine struct {
	num    int
	indent int
	text   string
}

type yparser struct {
	lines []srcLine
	pos   int
}

// parseYAML parses a scenario document into its root mapping.
func parseYAML(src string) (*node, error) {
	lines, err := splitLines(src)
	if err != nil {
		return nil, err
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("empty scenario file")
	}
	if lines[0].indent != 0 {
		return nil, fmt.Errorf("line %d: top-level content must not be indented", lines[0].num)
	}
	p := &yparser{lines: lines}
	root, err := p.parseMap(0)
	if err != nil {
		return nil, err
	}
	if p.pos < len(p.lines) {
		return nil, fmt.Errorf("line %d: unexpected content after document", p.lines[p.pos].num)
	}
	return root, nil
}

// splitLines strips comments and blanks and computes indentation.
func splitLines(src string) ([]srcLine, error) {
	var out []srcLine
	for i, raw := range strings.Split(src, "\n") {
		text := strings.TrimRight(stripComment(raw), " \r")
		if strings.TrimSpace(text) == "" {
			continue
		}
		indent := 0
		for indent < len(text) && text[indent] == ' ' {
			indent++
		}
		if indent < len(text) && text[indent] == '\t' {
			return nil, fmt.Errorf("line %d: tab in indentation (use spaces)", i+1)
		}
		out = append(out, srcLine{num: i + 1, indent: indent, text: text[indent:]})
	}
	return out, nil
}

// stripComment removes a trailing `#` comment, respecting quoted
// strings. A `#` starts a comment at line start or after whitespace.
func stripComment(s string) string {
	inQuote := false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			inQuote = !inQuote
		case '\\':
			if inQuote {
				i++
			}
		case '#':
			if !inQuote && (i == 0 || s[i-1] == ' ' || s[i-1] == '\t') {
				return s[:i]
			}
		}
	}
	return s
}

// keySplit splits `key: value` (or `key:`). ok is false when the line
// is not a mapping entry (no colon followed by a space or end of line).
func keySplit(text string) (key, rest string, ok bool) {
	for i := 0; i < len(text); i++ {
		switch text[i] {
		case '"':
			return "", "", false // quoted scalar, not a key
		case ':':
			if i+1 == len(text) {
				return text[:i], "", true
			}
			if text[i+1] == ' ' {
				return text[:i], strings.TrimSpace(text[i+1:]), true
			}
			return "", "", false // `a:b` is a plain scalar
		}
	}
	return "", "", false
}

func validKey(key string) bool {
	if key == "" {
		return false
	}
	for _, r := range key {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '-':
		default:
			return false
		}
	}
	return true
}

// parseBlock parses the block starting at the current line, which is
// either a sequence (dash items) or a mapping.
func (p *yparser) parseBlock(indent int) (*node, error) {
	l := p.lines[p.pos]
	if l.text == "-" || strings.HasPrefix(l.text, "- ") {
		return p.parseSeq(indent)
	}
	return p.parseMap(indent)
}

// parseMap parses mapping entries at exactly the given indent.
func (p *yparser) parseMap(indent int) (*node, error) {
	n := &node{line: p.lines[p.pos].num}
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent < indent {
			break
		}
		if l.indent > indent {
			return nil, fmt.Errorf("line %d: unexpected indentation (expected %d spaces, got %d)",
				l.num, indent, l.indent)
		}
		if l.text == "-" || strings.HasPrefix(l.text, "- ") {
			return nil, fmt.Errorf("line %d: unexpected sequence item inside a mapping", l.num)
		}
		key, rest, ok := keySplit(l.text)
		if !ok {
			return nil, fmt.Errorf("line %d: expected \"key: value\" or \"key:\", got %q", l.num, l.text)
		}
		if !validKey(key) {
			return nil, fmt.Errorf("line %d: invalid key %q", l.num, key)
		}
		if n.get(key) != nil {
			return nil, fmt.Errorf("line %d: duplicate key %q", l.num, key)
		}
		p.pos++
		var child *node
		if rest != "" {
			sc, err := unquote(rest, l.num)
			if err != nil {
				return nil, err
			}
			child = &node{line: l.num, isScalar: true, scalar: sc}
		} else {
			if p.pos >= len(p.lines) || p.lines[p.pos].indent <= indent {
				return nil, fmt.Errorf("line %d: key %q has no value (expected a scalar after the colon or an indented block below)",
					l.num, key)
			}
			var err error
			child, err = p.parseBlock(p.lines[p.pos].indent)
			if err != nil {
				return nil, err
			}
		}
		n.keys = append(n.keys, key)
		n.vals = append(n.vals, child)
	}
	return n, nil
}

// parseSeq parses `- item` entries at exactly the given indent. A
// mapping item's first key rides the dash line; its remaining keys are
// re-parsed two spaces deeper.
func (p *yparser) parseSeq(indent int) (*node, error) {
	n := &node{line: p.lines[p.pos].num, isSeq: true}
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent < indent {
			break
		}
		if l.indent > indent {
			return nil, fmt.Errorf("line %d: unexpected indentation (expected %d spaces, got %d)",
				l.num, indent, l.indent)
		}
		if l.text != "-" && !strings.HasPrefix(l.text, "- ") {
			return nil, fmt.Errorf("line %d: expected a \"- \" sequence item, got %q", l.num, l.text)
		}
		rest := strings.TrimSpace(strings.TrimPrefix(l.text, "-"))
		var item *node
		if rest == "" {
			p.pos++
			if p.pos >= len(p.lines) || p.lines[p.pos].indent <= indent {
				return nil, fmt.Errorf("line %d: empty sequence item", l.num)
			}
			var err error
			item, err = p.parseBlock(p.lines[p.pos].indent)
			if err != nil {
				return nil, err
			}
		} else if _, _, ok := keySplit(rest); ok {
			// Mapping item: rewrite the dash line as its first key at
			// the item body indent and parse the mapping from there.
			p.lines[p.pos] = srcLine{num: l.num, indent: indent + 2, text: rest}
			var err error
			item, err = p.parseMap(indent + 2)
			if err != nil {
				return nil, err
			}
		} else {
			sc, err := unquote(rest, l.num)
			if err != nil {
				return nil, err
			}
			item = &node{line: l.num, isScalar: true, scalar: sc}
			p.pos++
		}
		n.items = append(n.items, item)
	}
	return n, nil
}

// unquote resolves a scalar token: double-quoted strings get their
// escapes processed; bare tokens are returned verbatim.
func unquote(s string, line int) (string, error) {
	if !strings.HasPrefix(s, `"`) {
		return s, nil
	}
	var b strings.Builder
	i := 1
	for i < len(s) {
		switch s[i] {
		case '"':
			if i+1 != len(s) {
				return "", fmt.Errorf("line %d: unexpected content after closing quote in %s", line, s)
			}
			return b.String(), nil
		case '\\':
			i++
			if i >= len(s) {
				return "", fmt.Errorf("line %d: dangling escape in quoted string", line)
			}
			switch s[i] {
			case '"', '\\':
				b.WriteByte(s[i])
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			default:
				return "", fmt.Errorf("line %d: unsupported escape \\%c in quoted string", line, s[i])
			}
		default:
			b.WriteByte(s[i])
		}
		i++
	}
	return "", fmt.Errorf("line %d: unterminated quoted string %s", line, s)
}
