package scenario

import (
	"strings"
	"testing"
)

// TestParseYAMLShapes covers the structural subset the DSL relies on:
// nested mappings, sequences of mappings, inline scalars, quoting, and
// comments.
func TestParseYAMLShapes(t *testing.T) {
	src := `# top comment
name: demo
fleet:
  shards: 2
  machines: 4
tenants:
  - name: web
    rate: 1000
  - name: "spiky # not a comment"
    rate: 2.5
flags:
  - alpha
  - beta
`
	root, err := parseYAML(src)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := root.get("name").strVal("name"); got != "demo" {
		t.Errorf("name = %q, want demo", got)
	}
	fleet := root.get("fleet")
	if fleet == nil || len(fleet.keys) != 2 {
		t.Fatalf("fleet mapping not parsed: %+v", fleet)
	}
	if n, _ := fleet.get("machines").intVal("machines"); n != 4 {
		t.Errorf("machines = %d, want 4", n)
	}
	tenants := root.get("tenants")
	if tenants == nil || !tenants.isSeq || len(tenants.items) != 2 {
		t.Fatalf("tenants sequence not parsed: %+v", tenants)
	}
	if name, _ := tenants.items[1].get("name").strVal("name"); name != "spiky # not a comment" {
		t.Errorf("quoted name with hash = %q", name)
	}
	if r, _ := tenants.items[1].get("rate").floatVal("rate"); r != 2.5 {
		t.Errorf("rate = %g, want 2.5", r)
	}
	flags := root.get("flags")
	if !flags.isSeq || len(flags.items) != 2 || !flags.items[0].isScalar {
		t.Fatalf("scalar sequence not parsed: %+v", flags)
	}
}

// TestParseYAMLErrors asserts the parser rejects malformed input with a
// line-numbered, actionable message.
func TestParseYAMLErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"empty", "\n# only comments\n", "empty scenario file"},
		{"tab indent", "a:\n\tb: 1\n", "line 2: tab in indentation (use spaces)"},
		{"bad indent", "a:\n   b: 1\n  c: 2\n", "line 3: unexpected indentation (expected 0 spaces, got 2)"},
		{"duplicate key", "a: 1\na: 2\n", `line 2: duplicate key "a"`},
		{"missing value", "a:\nb: 1\n", `line 1: key "a" has no value`},
		{"no colon", "a: 1\njust words\n", `line 2: expected "key: value" or "key:"`},
		{"invalid key", "a b: 1\n", `line 1: invalid key "a b"`},
		{"seq in map", "a: 1\n- b\n", "line 2: unexpected sequence item inside a mapping"},
		{"empty seq item", "a:\n  - b: 1\n  -\n", "line 3: empty sequence item"},
		{"unterminated quote", `a: "oops` + "\n", "line 1: unterminated quoted string"},
		{"bad escape", `a: "\q"` + "\n", `line 1: unsupported escape \q in quoted string`},
		{"trailing after quote", `a: "x" y` + "\n", "line 1: unexpected content after closing quote"},
		{"indented doc", "  a: 1\n", "line 1: top-level content must not be indented"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseYAML(tc.src)
			if err == nil {
				t.Fatalf("parseYAML accepted malformed input:\n%s", tc.src)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error = %q, want substring %q", err, tc.want)
			}
		})
	}
}

// TestScalarCoercions checks the typed accessors and their mismatch
// errors, which back the DSL's "assertion-bound type mismatch" checks.
func TestScalarCoercions(t *testing.T) {
	root, err := parseYAML("num: 3\nfrac: 0.5\nword: zero\nyes: true\nno: false\n")
	if err != nil {
		t.Fatal(err)
	}
	if v, err := root.get("num").floatVal("num"); err != nil || v != 3 {
		t.Errorf("floatVal(num) = %g, %v", v, err)
	}
	if v, err := root.get("yes").boolVal("yes"); err != nil || !v {
		t.Errorf("boolVal(yes) = %v, %v", v, err)
	}
	if v, err := root.get("no").boolVal("no"); err != nil || v {
		t.Errorf("boolVal(no) = %v, %v", v, err)
	}
	if _, err := root.get("word").floatVal("value"); err == nil ||
		!strings.Contains(err.Error(), `value: expected a number, got "zero"`) {
		t.Errorf("floatVal on word = %v, want type-mismatch error", err)
	}
	if _, err := root.get("frac").intVal("frac"); err == nil ||
		!strings.Contains(err.Error(), `frac: expected an integer, got "0.5"`) {
		t.Errorf("intVal on fraction = %v, want integer error", err)
	}
	if _, err := root.get("word").boolVal("word"); err == nil ||
		!strings.Contains(err.Error(), "expected true or false") {
		t.Errorf("boolVal on word = %v, want bool error", err)
	}
}
