package scenario

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const smoke = `name: smoke
horizon_ms: 4
fleet:
  shards: 2
  machines: 3
workload:
  stores: 2
  objects: 48
  write_frac: 0.2
  tenants:
    - name: web
      rate: 60000
assertions:
  - metric: lost
    op: ==
    value: 0
  - metric: generated
    op: ">"
    value: 100
`

func mustRun(t *testing.T, src string, opt Options) *Outcome {
	t.Helper()
	sp, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(sp, opt)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestRunSmokeDeterministic runs the same scenario three times — twice
// at one worker, once at four — and requires byte-identical reports:
// the DSL's central contract is that a (scenario, seed) pair names one
// exact execution regardless of parallelism.
func TestRunSmokeDeterministic(t *testing.T) {
	var reports [3]bytes.Buffer
	for i, par := range []int{1, 1, 4} {
		out := mustRun(t, smoke, Options{Par: par})
		if !out.Pass {
			t.Fatalf("run %d: assertions failed:\n%+v", i, out.Asserts)
		}
		out.WriteReport(&reports[i])
	}
	if !bytes.Equal(reports[0].Bytes(), reports[1].Bytes()) {
		t.Error("same seed, same workers: reports differ")
	}
	if !bytes.Equal(reports[0].Bytes(), reports[2].Bytes()) {
		t.Error("par=1 and par=4 reports differ; worker count leaked into the simulation")
	}
}

func TestRunSeedChangesOutcome(t *testing.T) {
	a := mustRun(t, smoke, Options{Seed: 1})
	b := mustRun(t, smoke, Options{Seed: 2})
	if a.Seed != 1 || b.Seed != 2 {
		t.Fatalf("seeds = %d, %d", a.Seed, b.Seed)
	}
	if a.Metrics["generated"] == b.Metrics["generated"] &&
		a.Metrics["p99_ms"] == b.Metrics["p99_ms"] {
		t.Error("seeds 1 and 2 produced identical arrivals and tail; seed is not reaching the run")
	}
}

// TestFailingAssertionReported: an unsatisfiable bound must flip the
// outcome to fail and carry the observed value in the result row.
func TestFailingAssertionReported(t *testing.T) {
	src := strings.Replace(smoke, "    value: 100\n", "    value: 1000000000\n", 1)
	out := mustRun(t, src, Options{})
	if out.Pass {
		t.Fatal("outcome passed despite impossible generated > 1e9 bound")
	}
	var failed *AssertResult
	for i := range out.Asserts {
		if !out.Asserts[i].Pass {
			failed = &out.Asserts[i]
		}
	}
	if failed == nil {
		t.Fatal("no failing AssertResult recorded")
	}
	if failed.Metric != "generated" || failed.Got <= 0 || failed.Got >= 1e9 {
		t.Errorf("failing row = %+v, want generated with the observed count", *failed)
	}
	var rep bytes.Buffer
	out.WriteReport(&rep)
	if !strings.Contains(rep.String(), "assert FAIL: generated > 1000000000") {
		t.Errorf("report missing FAIL line:\n%s", rep.String())
	}
	if !strings.Contains(rep.String(), "RESULT FAIL") {
		t.Errorf("report missing RESULT FAIL summary:\n%s", rep.String())
	}
}

// TestCrashWithoutRebuildLosesData: at rf=1 with no rebuilder and no
// restart, a crashed store's objects must be reported lost — the
// verifier is real, not cosmetic.
func TestCrashWithoutRebuildLosesData(t *testing.T) {
	src := `name: lossy
horizon_ms: 6
fleet:
  machines: 3
workload:
  stores: 2
  objects: 32
  write_frac: 0.2
  tenants:
    - name: web
      rate: 40000
events:
  - at_ms: 2
    kind: crash
    machine: 1
`
	out := mustRun(t, src, Options{})
	if out.Metrics["lost"] == 0 {
		t.Error("crashed rf=1 store with no rebuild reported zero loss")
	}
	if out.Metrics["crashes"] != 1 {
		t.Errorf("crashes = %g, want 1", out.Metrics["crashes"])
	}
}

// TestRebuildRecoversData is the converse: the same crash with the
// rebuild fallback enabled must end with nothing lost.
func TestRebuildRecoversData(t *testing.T) {
	src := `name: rebuilt
horizon_ms: 8
fleet:
  machines: 3
workload:
  stores: 2
  rebuild: true
  objects: 32
  write_frac: 0.2
  tenants:
    - name: web
      rate: 40000
events:
  - at_ms: 2
    kind: crash
    machine: 1
  - at_ms: 4
    kind: restart
    machine: 1
`
	out := mustRun(t, src, Options{})
	if out.Metrics["lost"] != 0 {
		t.Errorf("lost = %g with rebuild enabled, want 0", out.Metrics["lost"])
	}
	if out.Metrics["recoveries"] < 1 {
		t.Errorf("recoveries = %g, want >= 1", out.Metrics["recoveries"])
	}
}

func TestWriteJSONShape(t *testing.T) {
	out := mustRun(t, smoke, Options{})
	var buf bytes.Buffer
	if err := out.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Scenario   string             `json:"scenario"`
		Seed       int64              `json:"seed"`
		Pass       bool               `json:"pass"`
		Metrics    map[string]float64 `json:"metrics"`
		Assertions []AssertResult     `json:"assertions"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.Scenario != "smoke" || !doc.Pass || len(doc.Assertions) != 2 {
		t.Errorf("unexpected JSON report: %+v", doc)
	}
	for _, name := range MetricNames {
		if _, ok := doc.Metrics[name]; !ok {
			t.Errorf("JSON metrics missing %q", name)
		}
	}
}

func TestOptionsSeedZeroUsesSpecSeed(t *testing.T) {
	src := strings.Replace(smoke, "name: smoke\n", "name: smoke\nseed: 7\n", 1)
	out := mustRun(t, src, Options{})
	if out.Seed != 7 {
		t.Errorf("seed = %d, want committed spec seed 7", out.Seed)
	}
}

// gpuTrain is a scenario with a GPU training rider: two checkpointed
// trainers on identical devices, one of which dies fatally mid-run.
const gpuTrain = `name: gpu-train
horizon_ms: 40
fleet:
  machines: 3
  gpus:
    - count: 2
      mem_mb: 256
      class: a100
workload:
  stores: 2
  objects: 32
  write_frac: 0.2
  tenants:
    - name: web
      rate: 20000
  trainers:
    count: 2
    model_mb: 64
    step_us: 500
    batch_kb: 64
    checkpoint_kb: 128
    snapshot_every: 16
events:
  - at_ms: 10
    kind: gpu_xid
    machine: 1
    gpu: 0
`

// TestGPUXidCheckpointRestore: a fatal device error mid-run must be
// absorbed by a checkpoint re-placement with zero acknowledged steps
// lost — the scenario-level restatement of the gpu package's core
// robustness guarantee.
func TestGPUXidCheckpointRestore(t *testing.T) {
	out := mustRun(t, gpuTrain, Options{})
	m := out.Metrics
	if m["gpu_xids"] != 1 {
		t.Errorf("gpu_xids = %g, want 1", m["gpu_xids"])
	}
	if m["gpu_restores"] != 1 {
		t.Errorf("gpu_restores = %g, want 1", m["gpu_restores"])
	}
	if m["lost_steps"] != 0 {
		t.Errorf("lost_steps = %g, want 0 (checkpointing is on)", m["lost_steps"])
	}
	// Full-model snapshots every 16th step dominate the step budget, so
	// the bound is well under the no-snapshot ideal (~80 steps/trainer).
	if m["trainer_steps"] < 50 {
		t.Errorf("trainer_steps = %g, want >= 50 (training must keep moving)", m["trainer_steps"])
	}
	if m["checkpoints"] < m["trainer_steps"] {
		t.Errorf("checkpoints = %g < trainer_steps = %g; every acked step must be mirrored",
			m["checkpoints"], m["trainer_steps"])
	}
	if m["lost"] != 0 {
		t.Errorf("serving lost = %g, want 0", m["lost"])
	}
}

// TestGPUStragglerMitigated: a thermal throttle on one device must trip
// the straggler detector and re-dispatch the victim to a faster spare.
func TestGPUStragglerMitigated(t *testing.T) {
	src := strings.Replace(gpuTrain,
		`  - at_ms: 10
    kind: gpu_xid
    machine: 1
    gpu: 0
`,
		`  - at_ms: 10
    kind: gpu_throttle
    machine: 1
    gpu: 0
    factor: 4
`, 1)
	out := mustRun(t, src, Options{})
	m := out.Metrics
	if m["gpu_throttles"] != 1 {
		t.Errorf("gpu_throttles = %g, want 1", m["gpu_throttles"])
	}
	if m["gpu_mitigations"] < 1 {
		t.Errorf("gpu_mitigations = %g, want >= 1 (straggler must be re-dispatched)", m["gpu_mitigations"])
	}
	if m["lost_steps"] != 0 {
		t.Errorf("lost_steps = %g, want 0", m["lost_steps"])
	}
}

// TestGPUUncheckpointedXidLosesWork: the same fatal error without a
// checkpoint mirror must restart training from step zero and report
// every acknowledged step lost.
func TestGPUUncheckpointedXidLosesWork(t *testing.T) {
	src := strings.Replace(gpuTrain, "    checkpoint_kb: 128\n    snapshot_every: 16\n", "", 1)
	out := mustRun(t, src, Options{})
	m := out.Metrics
	if m["gpu_restores"] != 1 {
		t.Errorf("gpu_restores = %g, want 1", m["gpu_restores"])
	}
	if m["lost_steps"] < 1 {
		t.Errorf("lost_steps = %g, want >= 1 without checkpoints", m["lost_steps"])
	}
	if m["checkpoints"] != 0 {
		t.Errorf("checkpoints = %g, want 0", m["checkpoints"])
	}
}

// TestGPUTrainDeterministic: the GPU rider must preserve the DSL's
// byte-identical-reports contract across worker counts.
func TestGPUTrainDeterministic(t *testing.T) {
	var reports [2]bytes.Buffer
	for i, par := range []int{1, 4} {
		out := mustRun(t, gpuTrain, Options{Par: par})
		out.WriteReport(&reports[i])
	}
	if !bytes.Equal(reports[0].Bytes(), reports[1].Bytes()) {
		t.Error("par=1 and par=4 GPU-trainer reports differ; worker count leaked into the simulation")
	}
}
