package scenario

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Spec is one fully decoded, validated scenario: a fleet, a workload
// mix, a timed event schedule, and declarative assertions over the
// run's measured metrics.
type Spec struct {
	Name         string
	Description  string
	Seed         int64   // committed seed; qsctl run -seed overrides
	HorizonMS    float64 // virtual run length
	BucketMS     float64 // goodput bucket width (default horizon/40)
	DrainMS      float64 // post-horizon drain+verify window (default max(6, horizon/2))
	RecoveryFrac float64 // goodput fraction of baseline that counts as recovered

	Fleet    Fleet
	Workload Workload
	Events   []Event
	Asserts  []Assertion
	SLO      SLO
}

// SLO configures the streaming SLO plane (internal/obs/slo): fixed
// windows over the virtual clock and multi-window burn-rate rules that
// open/close incidents. Rates (floor_rps) are fleet-wide; Run divides
// them by the shard count, matching how tenant rates split.
type SLO struct {
	WindowMS float64
	Windows  int // burn-rate ring: rules look at the last N windows
	Rules    []SLORule
}

// Enabled reports whether the scenario declared an slo block.
func (s SLO) Enabled() bool { return s.WindowMS > 0 }

// SLORule mirrors slo.Rule with spec-level units.
type SLORule struct {
	Kind     string // p999_above | goodput_below | error_rate_above
	Name     string
	BoundMS  float64 // p999_above
	FloorRPS float64 // goodput_below, fleet-wide
	Ceiling  float64 // error_rate_above, fraction in [0,1]
	For      int
	Severity string // warn (default) | page
	Line     int
}

// Fleet shapes the simulated cluster: Shards independent kernel shards
// of Machines machines each. Machine 0 of every shard is the front end
// (servers, failure-detector monitor) and cannot be crashed. GPUs, when
// present, attach to every non-front-end machine (1..Machines-1).
type Fleet struct {
	Shards   int
	Machines int // per shard
	Cores    int
	MemMB    int64
	GPUs     []GPUClass // device classes per non-front-end machine
}

// GPUsPerMachine is the device count each GPU-bearing machine hosts.
func (f Fleet) GPUsPerMachine() int {
	n := 0
	for _, c := range f.GPUs {
		n += c.Count
	}
	return n
}

// GPUClass is one heterogeneous device class: Count devices per
// machine, each with MemMB of device memory, a LinkGBps host link, and
// a relative Speed (kernel time divides by it).
type GPUClass struct {
	Count    int
	MemMB    int64
	LinkGBps float64
	Class    string
	Speed    float64
}

// Workload is the serving mix driven against the fleet: preloaded
// stores, an open-loop multi-tenant request stream, and a write
// fraction that makes durability observable.
type Workload struct {
	Stores       int  // memory proclets per shard, on machines 1..Machines-1
	RF           int  // replication factor; 1 = unreplicated
	Rebuild      bool // RF=1 only: rebuild crash-lost contents from the golden record
	Objects      int  // preloaded objects per store
	ObjectBytes  int64
	WriteFrac    float64 // fraction of requests that are writes
	Servers      int     // server procs per shard, on machine 0
	BatchMax     int
	DeadlineUS   float64 // latency deadline; beyond it a request is a timeout
	SampleStepMS float64 // rate-curve discretization step
	Tenants      []Tenant
	Trainers     Trainers
}

// Trainers is an optional GPU training workload riding alongside the
// serving mix: Count GPU proclets placed by the fleet manager, each
// stepping continuously until the horizon. CheckpointKB > 0 mirrors
// every step's optimizer delta to anti-affine host RAM before the ack,
// so a fatal device error (gpu_xid) loses at most the in-flight step.
type Trainers struct {
	Count         int
	ModelMB       int64   // device-resident state per trainer
	StepUS        float64 // kernel time per step at speed 1
	BatchKB       int64   // per-step batch upload
	CheckpointKB  int64   // per-step delta ship; 0 disables checkpointing
	SnapshotEvery int     // every Nth delta is a full snapshot
}

// Tenant is one aggregate client population: a rate curve over the
// horizon and a Zipfian key popularity.
type Tenant struct {
	Name     string
	Rate     float64 // aggregate req/s across the whole fleet
	Curve    string  // constant | diurnal | ramp
	Amp      float64 // diurnal amplitude in [0,1]
	PeriodMS float64 // diurnal period
	To       float64 // ramp target rate
	OverMS   float64 // ramp duration
	Zipf     float64 // Zipfian skew theta
	Keys     uint64  // keyspace size
}

// EventKind enumerates the timed operations a scenario can schedule.
type EventKind int

// Event kinds. Fault kinds compile onto the per-shard fault.Injector;
// spike folds into the tenant's rate curve; migrate compiles to a
// timed proclet migration.
const (
	KindCrash EventKind = iota
	KindRestart
	KindPartition
	KindDegrade
	KindHeal
	KindSpike
	KindMigrate
	KindGPUXid
	KindGPUThrottle
	KindGPUHeal
)

var kindNames = []string{"crash", "restart", "partition", "degrade", "heal", "spike", "migrate",
	"gpu_xid", "gpu_throttle", "gpu_heal"}

func (k EventKind) String() string { return kindNames[k] }

// Event is one timed operation. Machine, A, B, Store, and To are
// global indices: machine g lives on shard g/Fleet.Machines as local
// machine g%Fleet.Machines, store s on shard s/Workload.Stores.
type Event struct {
	AtMS float64
	Kind EventKind
	Line int

	Machine int // crash, restart

	A, B    int     // partition, degrade, heal
	ExtraUS float64 // degrade: added latency
	Drop    float64 // degrade: drop probability

	Tenant  string  // spike
	Mult    float64 // spike multiplier
	RampMS  float64
	HoldMS  float64
	DecayMS float64

	Store int // migrate: global store index
	To    int // migrate: global destination machine

	GPU         int     // gpu_*: device index on Machine
	Xid         int     // gpu_xid: device error code
	Factor      float64 // gpu_throttle: multiplicative slowdown (>= 1)
	StallEveryN int     // gpu_throttle: ECC stutter cadence (0 = none)
	StallUS     float64 // gpu_throttle: stall length per stutter
}

// EndMS is when the event's disturbance is over: the instant itself,
// except spikes which run at+ramp+hold+decay.
func (e Event) EndMS() float64 {
	if e.Kind == KindSpike {
		return e.AtMS + e.RampMS + e.HoldMS + e.DecayMS
	}
	return e.AtMS
}

func (e Event) String() string {
	switch e.Kind {
	case KindCrash, KindRestart:
		return fmt.Sprintf("%s m%d @%gms", e.Kind, e.Machine, e.AtMS)
	case KindPartition, KindHeal:
		return fmt.Sprintf("%s m%d-m%d @%gms", e.Kind, e.A, e.B, e.AtMS)
	case KindDegrade:
		return fmt.Sprintf("degrade m%d-m%d +%gus drop=%g @%gms", e.A, e.B, e.ExtraUS, e.Drop, e.AtMS)
	case KindSpike:
		return fmt.Sprintf("spike %s x%g @%gms (%g+%g+%gms)", e.Tenant, e.Mult, e.AtMS, e.RampMS, e.HoldMS, e.DecayMS)
	case KindMigrate:
		return fmt.Sprintf("migrate store %d -> m%d @%gms", e.Store, e.To, e.AtMS)
	case KindGPUXid:
		return fmt.Sprintf("gpu_xid m%d/gpu%d xid=%d @%gms", e.Machine, e.GPU, e.Xid, e.AtMS)
	case KindGPUThrottle:
		return fmt.Sprintf("gpu_throttle m%d/gpu%d x%g stall %gus/%d @%gms",
			e.Machine, e.GPU, e.Factor, e.StallUS, e.StallEveryN, e.AtMS)
	case KindGPUHeal:
		return fmt.Sprintf("gpu_heal m%d/gpu%d @%gms", e.Machine, e.GPU, e.AtMS)
	default:
		return fmt.Sprintf("event(%d)", int(e.Kind))
	}
}

// Assertion is one declarative bound over a run metric.
type Assertion struct {
	Metric string
	Op     string // == != < <= > >=
	Value  float64
	Line   int
}

func (a Assertion) String() string {
	return fmt.Sprintf("%s %s %g", a.Metric, a.Op, a.Value)
}

// MetricNames is every metric a scenario assertion may reference, in
// report order. Run always populates all of them.
var MetricNames = []string{
	"generated", "served", "timeouts", "timeout_frac", "errors",
	"goodput_rps", "p50_ms", "p99_ms", "p999_ms", "max_ms", "mean_ms",
	"acked_writes", "lost",
	"crashes", "restarts", "partitions", "degrades", "heals",
	"promotions", "recoveries", "migrations",
	"recovery_ms", "events", "windows",
	"gpu_xids", "gpu_throttles", "gpu_heals",
	"gpu_restores", "gpu_evacuations", "gpu_mitigations", "gpu_stranded",
	"trainer_steps", "checkpoints", "lost_steps",
	"slo_windows", "slo_breaches",
	"incidents_opened", "incidents_resolved", "incidents_open",
}

var metricSet = func() map[string]bool {
	m := make(map[string]bool, len(MetricNames))
	for _, n := range MetricNames {
		m[n] = true
	}
	return m
}()

var assertOps = []string{"==", "!=", "<", "<=", ">", ">="}

// NeverRecovered is the recovery_ms value reported when goodput never
// regains the recovery threshold after the last event: any upper-bound
// assertion on recovery_ms fails against it.
const NeverRecovered = 1e300

// Parse decodes and validates a scenario document. Errors carry the
// 1-based source line of the offending field.
func Parse(src string) (*Spec, error) {
	root, err := parseYAML(src)
	if err != nil {
		return nil, err
	}
	sp := &Spec{
		Seed:         1,
		RecoveryFrac: 0.9,
		Fleet:        Fleet{Shards: 1, Machines: 4, Cores: 4, MemMB: 64},
		Workload: Workload{
			Stores:      4,
			RF:          1,
			Objects:     512,
			ObjectBytes: 256,
			WriteFrac:   0.25,
			Servers:     4,
			BatchMax:    32,
			DeadlineUS:  1000,
		},
	}
	for i, key := range root.keys {
		v := root.vals[i]
		switch key {
		case "name":
			if sp.Name, err = v.strVal(`field "name"`); err != nil {
				return nil, err
			}
		case "description":
			if sp.Description, err = v.strVal(`field "description"`); err != nil {
				return nil, err
			}
		case "seed":
			if sp.Seed, err = v.intVal(`field "seed"`); err != nil {
				return nil, err
			}
		case "horizon_ms":
			if sp.HorizonMS, err = v.floatVal(`field "horizon_ms"`); err != nil {
				return nil, err
			}
		case "bucket_ms":
			if sp.BucketMS, err = v.floatVal(`field "bucket_ms"`); err != nil {
				return nil, err
			}
		case "drain_ms":
			if sp.DrainMS, err = v.floatVal(`field "drain_ms"`); err != nil {
				return nil, err
			}
		case "recovery_frac":
			if sp.RecoveryFrac, err = v.floatVal(`field "recovery_frac"`); err != nil {
				return nil, err
			}
		case "fleet":
			if err = decodeFleet(v, &sp.Fleet); err != nil {
				return nil, err
			}
		case "workload":
			if err = decodeWorkload(v, &sp.Workload); err != nil {
				return nil, err
			}
		case "events":
			if sp.Events, err = decodeEvents(v); err != nil {
				return nil, err
			}
		case "assertions":
			if sp.Asserts, err = decodeAsserts(v); err != nil {
				return nil, err
			}
		case "slo":
			if err = decodeSLO(v, &sp.SLO); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("unknown top-level field %q (line %d)", key, v.line)
		}
	}
	sp.applyDefaults()
	if err := sp.validate(); err != nil {
		return nil, err
	}
	return sp, nil
}

func (sp *Spec) applyDefaults() {
	if sp.BucketMS == 0 {
		sp.BucketMS = sp.HorizonMS / 40
	}
	if sp.DrainMS == 0 {
		sp.DrainMS = math.Max(6, sp.HorizonMS/2)
	}
	if sp.Workload.SampleStepMS == 0 {
		sp.Workload.SampleStepMS = sp.HorizonMS / 200
	}
	for i := range sp.Workload.Tenants {
		t := &sp.Workload.Tenants[i]
		if t.Curve == "" {
			t.Curve = "constant"
		}
		if t.Zipf == 0 {
			t.Zipf = 0.9
		}
		if t.Keys == 0 {
			t.Keys = 1 << 20
		}
		if t.PeriodMS == 0 {
			t.PeriodMS = sp.HorizonMS
		}
	}
}

func decodeFleet(n *node, f *Fleet) error {
	if n.isScalar || n.isSeq {
		return fmt.Errorf(`field "fleet": expected a mapping, got a %s (line %d)`, n.kindName(), n.line)
	}
	for i, key := range n.keys {
		v := n.vals[i]
		ctx := fmt.Sprintf("fleet: field %q", key)
		var err error
		var iv int64
		switch key {
		case "shards":
			if iv, err = v.intVal(ctx); err == nil {
				f.Shards = int(iv)
			}
		case "machines":
			if iv, err = v.intVal(ctx); err == nil {
				f.Machines = int(iv)
			}
		case "cores":
			if iv, err = v.intVal(ctx); err == nil {
				f.Cores = int(iv)
			}
		case "mem_mb":
			if f.MemMB, err = v.intVal(ctx); err != nil {
				return err
			}
		case "gpus":
			f.GPUs, err = decodeGPUs(v)
		default:
			return fmt.Errorf("fleet: unknown field %q (line %d)", key, v.line)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func decodeGPUs(n *node) ([]GPUClass, error) {
	if !n.isSeq {
		return nil, fmt.Errorf(`fleet: field "gpus": expected a sequence, got a %s (line %d)`, n.kindName(), n.line)
	}
	var out []GPUClass
	for gi, item := range n.items {
		if item.isScalar || item.isSeq {
			return nil, fmt.Errorf("gpus[%d]: expected a mapping, got a %s (line %d)", gi, item.kindName(), item.line)
		}
		c := GPUClass{Count: 1, LinkGBps: 16, Class: "gpu", Speed: 1}
		for i, key := range item.keys {
			v := item.vals[i]
			ctx := fmt.Sprintf("gpus[%d]: field %q", gi, key)
			var err error
			var iv int64
			switch key {
			case "count":
				if iv, err = v.intVal(ctx); err == nil {
					c.Count = int(iv)
				}
			case "mem_mb":
				c.MemMB, err = v.intVal(ctx)
			case "link_gbps":
				c.LinkGBps, err = v.floatVal(ctx)
			case "class":
				c.Class, err = v.strVal(ctx)
			case "speed":
				c.Speed, err = v.floatVal(ctx)
			default:
				return nil, fmt.Errorf("gpus[%d]: unknown field %q (line %d)", gi, key, v.line)
			}
			if err != nil {
				return nil, err
			}
		}
		out = append(out, c)
	}
	return out, nil
}

func decodeWorkload(n *node, w *Workload) error {
	if n.isScalar || n.isSeq {
		return fmt.Errorf(`field "workload": expected a mapping, got a %s (line %d)`, n.kindName(), n.line)
	}
	for i, key := range n.keys {
		v := n.vals[i]
		ctx := fmt.Sprintf("workload: field %q", key)
		var err error
		var iv int64
		switch key {
		case "stores":
			if iv, err = v.intVal(ctx); err == nil {
				w.Stores = int(iv)
			}
		case "rf":
			if iv, err = v.intVal(ctx); err == nil {
				w.RF = int(iv)
			}
		case "rebuild":
			w.Rebuild, err = v.boolVal(ctx)
		case "objects":
			if iv, err = v.intVal(ctx); err == nil {
				w.Objects = int(iv)
			}
		case "object_bytes":
			w.ObjectBytes, err = v.intVal(ctx)
		case "write_frac":
			w.WriteFrac, err = v.floatVal(ctx)
		case "servers":
			if iv, err = v.intVal(ctx); err == nil {
				w.Servers = int(iv)
			}
		case "batch_max":
			if iv, err = v.intVal(ctx); err == nil {
				w.BatchMax = int(iv)
			}
		case "deadline_us":
			w.DeadlineUS, err = v.floatVal(ctx)
		case "sample_step_ms":
			w.SampleStepMS, err = v.floatVal(ctx)
		case "tenants":
			w.Tenants, err = decodeTenants(v)
		case "trainers":
			err = decodeTrainers(v, &w.Trainers)
		default:
			return fmt.Errorf("workload: unknown field %q (line %d)", key, v.line)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func decodeTrainers(n *node, t *Trainers) error {
	if n.isScalar || n.isSeq {
		return fmt.Errorf(`workload: field "trainers": expected a mapping, got a %s (line %d)`, n.kindName(), n.line)
	}
	for i, key := range n.keys {
		v := n.vals[i]
		ctx := fmt.Sprintf("trainers: field %q", key)
		var err error
		var iv int64
		switch key {
		case "count":
			if iv, err = v.intVal(ctx); err == nil {
				t.Count = int(iv)
			}
		case "model_mb":
			t.ModelMB, err = v.intVal(ctx)
		case "step_us":
			t.StepUS, err = v.floatVal(ctx)
		case "batch_kb":
			t.BatchKB, err = v.intVal(ctx)
		case "checkpoint_kb":
			t.CheckpointKB, err = v.intVal(ctx)
		case "snapshot_every":
			if iv, err = v.intVal(ctx); err == nil {
				t.SnapshotEvery = int(iv)
			}
		default:
			return fmt.Errorf("trainers: unknown field %q (line %d)", key, v.line)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func decodeTenants(n *node) ([]Tenant, error) {
	if !n.isSeq {
		return nil, fmt.Errorf(`workload: field "tenants": expected a sequence, got a %s (line %d)`, n.kindName(), n.line)
	}
	var out []Tenant
	for ti, item := range n.items {
		if item.isScalar || item.isSeq {
			return nil, fmt.Errorf("tenants[%d]: expected a mapping, got a %s (line %d)", ti, item.kindName(), item.line)
		}
		var t Tenant
		for i, key := range item.keys {
			v := item.vals[i]
			ctx := fmt.Sprintf("tenants[%d]: field %q", ti, key)
			var err error
			var iv int64
			switch key {
			case "name":
				t.Name, err = v.strVal(ctx)
			case "rate":
				t.Rate, err = v.floatVal(ctx)
			case "curve":
				t.Curve, err = v.strVal(ctx)
			case "amp":
				t.Amp, err = v.floatVal(ctx)
			case "period_ms":
				t.PeriodMS, err = v.floatVal(ctx)
			case "to":
				t.To, err = v.floatVal(ctx)
			case "over_ms":
				t.OverMS, err = v.floatVal(ctx)
			case "zipf":
				t.Zipf, err = v.floatVal(ctx)
			case "keys":
				if iv, err = v.intVal(ctx); err == nil {
					if iv <= 0 {
						return nil, fmt.Errorf("%s: must be positive (line %d)", ctx, v.line)
					}
					t.Keys = uint64(iv)
				}
			default:
				return nil, fmt.Errorf("tenants[%d]: unknown field %q (line %d)", ti, key, v.line)
			}
			if err != nil {
				return nil, err
			}
		}
		out = append(out, t)
	}
	return out, nil
}

func decodeEvents(n *node) ([]Event, error) {
	if !n.isSeq {
		return nil, fmt.Errorf(`field "events": expected a sequence, got a %s (line %d)`, n.kindName(), n.line)
	}
	var out []Event
	for ei, item := range n.items {
		if item.isScalar || item.isSeq {
			return nil, fmt.Errorf("events[%d]: expected a mapping, got a %s (line %d)", ei, item.kindName(), item.line)
		}
		ev := Event{Kind: -1, Line: item.line, Machine: -1, A: -1, B: -1, Store: -1, To: -1,
			GPU: -1, Xid: 79, Mult: math.NaN()}
		for i, key := range item.keys {
			v := item.vals[i]
			ctx := fmt.Sprintf("events[%d]: field %q", ei, key)
			var err error
			var iv int64
			switch key {
			case "at_ms":
				ev.AtMS, err = v.floatVal(ctx)
			case "kind":
				var s string
				if s, err = v.strVal(ctx); err == nil {
					ev.Kind = -1
					for k, name := range kindNames {
						if name == s {
							ev.Kind = EventKind(k)
						}
					}
					if ev.Kind < 0 {
						return nil, fmt.Errorf("events[%d]: unknown event kind %q (want %s) (line %d)",
							ei, s, strings.Join(kindNames, ", "), v.line)
					}
				}
			case "machine":
				if iv, err = v.intVal(ctx); err == nil {
					ev.Machine = int(iv)
				}
			case "a":
				if iv, err = v.intVal(ctx); err == nil {
					ev.A = int(iv)
				}
			case "b":
				if iv, err = v.intVal(ctx); err == nil {
					ev.B = int(iv)
				}
			case "extra_us":
				ev.ExtraUS, err = v.floatVal(ctx)
			case "drop":
				ev.Drop, err = v.floatVal(ctx)
			case "tenant":
				ev.Tenant, err = v.strVal(ctx)
			case "mult":
				ev.Mult, err = v.floatVal(ctx)
			case "ramp_ms":
				ev.RampMS, err = v.floatVal(ctx)
			case "hold_ms":
				ev.HoldMS, err = v.floatVal(ctx)
			case "decay_ms":
				ev.DecayMS, err = v.floatVal(ctx)
			case "store":
				if iv, err = v.intVal(ctx); err == nil {
					ev.Store = int(iv)
				}
			case "to":
				if iv, err = v.intVal(ctx); err == nil {
					ev.To = int(iv)
				}
			case "gpu":
				if iv, err = v.intVal(ctx); err == nil {
					ev.GPU = int(iv)
				}
			case "xid":
				if iv, err = v.intVal(ctx); err == nil {
					ev.Xid = int(iv)
				}
			case "factor":
				ev.Factor, err = v.floatVal(ctx)
			case "stall_every":
				if iv, err = v.intVal(ctx); err == nil {
					ev.StallEveryN = int(iv)
				}
			case "stall_us":
				ev.StallUS, err = v.floatVal(ctx)
			default:
				return nil, fmt.Errorf("events[%d]: unknown field %q (line %d)", ei, key, v.line)
			}
			if err != nil {
				return nil, err
			}
		}
		if ev.Kind < 0 {
			return nil, fmt.Errorf(`events[%d]: missing "kind" (line %d)`, ei, item.line)
		}
		out = append(out, ev)
	}
	return out, nil
}

var sloRuleKinds = []string{"p999_above", "goodput_below", "error_rate_above"}

func decodeSLO(n *node, s *SLO) error {
	if n.isScalar || n.isSeq {
		return fmt.Errorf(`field "slo": expected a mapping, got a %s (line %d)`, n.kindName(), n.line)
	}
	s.Windows = 5
	for i, key := range n.keys {
		v := n.vals[i]
		ctx := fmt.Sprintf("slo: field %q", key)
		var err error
		var iv int64
		switch key {
		case "window_ms":
			s.WindowMS, err = v.floatVal(ctx)
		case "windows":
			if iv, err = v.intVal(ctx); err == nil {
				s.Windows = int(iv)
			}
		case "rules":
			s.Rules, err = decodeSLORules(v)
		default:
			return fmt.Errorf("slo: unknown field %q (line %d)", key, v.line)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func decodeSLORules(n *node) ([]SLORule, error) {
	if !n.isSeq {
		return nil, fmt.Errorf(`slo: field "rules": expected a sequence, got a %s (line %d)`, n.kindName(), n.line)
	}
	var out []SLORule
	for ri, item := range n.items {
		if item.isScalar || item.isSeq {
			return nil, fmt.Errorf("slo rules[%d]: expected a mapping, got a %s (line %d)", ri, item.kindName(), item.line)
		}
		r := SLORule{Line: item.line, For: 1, Severity: "warn"}
		for i, key := range item.keys {
			v := item.vals[i]
			ctx := fmt.Sprintf("slo rules[%d]: field %q", ri, key)
			var err error
			var iv int64
			switch key {
			case "kind":
				if r.Kind, err = v.strVal(ctx); err == nil {
					ok := false
					for _, k := range sloRuleKinds {
						if k == r.Kind {
							ok = true
						}
					}
					if !ok {
						return nil, fmt.Errorf("slo rules[%d]: unknown rule kind %q (want %s) (line %d)",
							ri, r.Kind, strings.Join(sloRuleKinds, ", "), v.line)
					}
				}
			case "name":
				r.Name, err = v.strVal(ctx)
			case "bound_ms":
				r.BoundMS, err = v.floatVal(ctx)
			case "floor_rps":
				r.FloorRPS, err = v.floatVal(ctx)
			case "ceiling":
				r.Ceiling, err = v.floatVal(ctx)
			case "for":
				if iv, err = v.intVal(ctx); err == nil {
					r.For = int(iv)
				}
			case "severity":
				r.Severity, err = v.strVal(ctx)
			default:
				return nil, fmt.Errorf("slo rules[%d]: unknown field %q (line %d)", ri, key, v.line)
			}
			if err != nil {
				return nil, err
			}
		}
		if r.Kind == "" {
			return nil, fmt.Errorf(`slo rules[%d]: missing "kind" (line %d)`, ri, item.line)
		}
		out = append(out, r)
	}
	return out, nil
}

func decodeAsserts(n *node) ([]Assertion, error) {
	if !n.isSeq {
		return nil, fmt.Errorf(`field "assertions": expected a sequence, got a %s (line %d)`, n.kindName(), n.line)
	}
	var out []Assertion
	for ai, item := range n.items {
		if item.isScalar || item.isSeq {
			return nil, fmt.Errorf("assertions[%d]: expected a mapping, got a %s (line %d)", ai, item.kindName(), item.line)
		}
		a := Assertion{Line: item.line, Value: math.NaN()}
		for i, key := range item.keys {
			v := item.vals[i]
			ctx := fmt.Sprintf("assertions[%d]: field %q", ai, key)
			var err error
			switch key {
			case "metric":
				if a.Metric, err = v.strVal(ctx); err == nil && !metricSet[a.Metric] {
					return nil, fmt.Errorf("assertions[%d]: unknown metric %q (known: %s) (line %d)",
						ai, a.Metric, strings.Join(MetricNames, ", "), v.line)
				}
			case "op":
				if a.Op, err = v.strVal(ctx); err == nil {
					ok := false
					for _, op := range assertOps {
						if op == a.Op {
							ok = true
						}
					}
					if !ok {
						return nil, fmt.Errorf("assertions[%d]: unknown comparison op %q (want %s) (line %d)",
							ai, a.Op, strings.Join(assertOps, ", "), v.line)
					}
				}
			case "value":
				a.Value, err = v.floatVal(ctx)
			default:
				return nil, fmt.Errorf("assertions[%d]: unknown field %q (line %d)", ai, key, v.line)
			}
			if err != nil {
				return nil, err
			}
		}
		if a.Metric == "" {
			return nil, fmt.Errorf(`assertions[%d]: missing "metric" (line %d)`, ai, item.line)
		}
		if a.Op == "" {
			return nil, fmt.Errorf(`assertions[%d]: missing "op" (line %d)`, ai, item.line)
		}
		if math.IsNaN(a.Value) {
			return nil, fmt.Errorf(`assertions[%d]: missing "value" (line %d)`, ai, item.line)
		}
		out = append(out, a)
	}
	return out, nil
}

// validate enforces cross-field invariants: fleet/workload shape,
// event targets in range and on one shard, non-decreasing timestamps.
func (sp *Spec) validate() error {
	if sp.Name == "" {
		return fmt.Errorf(`scenario is missing "name"`)
	}
	if sp.HorizonMS <= 0 {
		return fmt.Errorf("scenario %q: horizon_ms must be positive (got %g)", sp.Name, sp.HorizonMS)
	}
	if sp.RecoveryFrac <= 0 || sp.RecoveryFrac > 1 {
		return fmt.Errorf("scenario %q: recovery_frac must be in (0, 1] (got %g)", sp.Name, sp.RecoveryFrac)
	}
	f, w := sp.Fleet, sp.Workload
	if f.Shards < 1 || f.Machines < 2 || f.Cores < 1 || f.MemMB < 1 {
		return fmt.Errorf("scenario %q: fleet needs shards >= 1, machines >= 2, cores >= 1, mem_mb >= 1 (got %d/%d/%d/%d)",
			sp.Name, f.Shards, f.Machines, f.Cores, f.MemMB)
	}
	if w.Stores < 1 || w.Servers < 1 || w.BatchMax < 1 || w.Objects < 1 {
		return fmt.Errorf("scenario %q: workload needs stores, servers, batch_max, objects >= 1", sp.Name)
	}
	if w.RF < 1 || w.RF > f.Machines-1 {
		return fmt.Errorf("scenario %q: rf must be in [1, machines-1] (got rf=%d with %d machines/shard)",
			sp.Name, w.RF, f.Machines)
	}
	if w.RF > 1 && w.Rebuild {
		return fmt.Errorf("scenario %q: rebuild is an rf=1 fallback; at rf=%d durability must come from replication alone",
			sp.Name, w.RF)
	}
	if w.WriteFrac < 0 || w.WriteFrac > 1 {
		return fmt.Errorf("scenario %q: write_frac must be in [0, 1] (got %g)", sp.Name, w.WriteFrac)
	}
	if len(w.Tenants) == 0 {
		return fmt.Errorf("scenario %q: workload needs at least one tenant", sp.Name)
	}
	for gi, c := range f.GPUs {
		if c.Count < 1 || c.MemMB < 1 || c.LinkGBps <= 0 || c.Speed <= 0 {
			return fmt.Errorf("scenario %q: gpus[%d] needs count >= 1, mem_mb >= 1, link_gbps > 0, speed > 0 (got %d/%d/%g/%g)",
				sp.Name, gi, c.Count, c.MemMB, c.LinkGBps, c.Speed)
		}
	}
	if tr := w.Trainers; tr.Count > 0 {
		if len(f.GPUs) == 0 {
			return fmt.Errorf("scenario %q: trainers need fleet.gpus device classes", sp.Name)
		}
		if tr.ModelMB < 1 || tr.StepUS <= 0 {
			return fmt.Errorf("scenario %q: trainers need model_mb >= 1 and step_us > 0 (got %d/%g)",
				sp.Name, tr.ModelMB, tr.StepUS)
		}
		if tr.BatchKB < 0 || tr.CheckpointKB < 0 || tr.SnapshotEvery < 0 {
			return fmt.Errorf("scenario %q: trainers batch_kb, checkpoint_kb, snapshot_every must be >= 0", sp.Name)
		}
	}
	tenants := map[string]bool{}
	for ti, t := range w.Tenants {
		if t.Name == "" {
			return fmt.Errorf("scenario %q: tenants[%d] is missing a name", sp.Name, ti)
		}
		if tenants[t.Name] {
			return fmt.Errorf("scenario %q: duplicate tenant %q", sp.Name, t.Name)
		}
		tenants[t.Name] = true
		if t.Rate <= 0 {
			return fmt.Errorf("scenario %q: tenant %q needs a positive rate (got %g)", sp.Name, t.Name, t.Rate)
		}
		switch t.Curve {
		case "constant":
		case "diurnal":
			if t.Amp < 0 || t.Amp > 1 {
				return fmt.Errorf("scenario %q: tenant %q: diurnal amp must be in [0, 1] (got %g)", sp.Name, t.Name, t.Amp)
			}
			if t.PeriodMS <= 0 {
				return fmt.Errorf("scenario %q: tenant %q: diurnal period_ms must be positive", sp.Name, t.Name)
			}
		case "ramp":
			if t.To < 0 || t.OverMS <= 0 {
				return fmt.Errorf("scenario %q: tenant %q: ramp needs to >= 0 and over_ms > 0", sp.Name, t.Name)
			}
		default:
			return fmt.Errorf("scenario %q: tenant %q: unknown curve %q (want constant, diurnal, ramp)",
				sp.Name, t.Name, t.Curve)
		}
	}
	if sp.SLO.Enabled() || len(sp.SLO.Rules) > 0 {
		if sp.SLO.WindowMS <= 0 {
			return fmt.Errorf("scenario %q: slo needs window_ms > 0 (got %g)", sp.Name, sp.SLO.WindowMS)
		}
		if sp.SLO.Windows < 1 {
			return fmt.Errorf("scenario %q: slo windows must be >= 1 (got %d)", sp.Name, sp.SLO.Windows)
		}
		if len(sp.SLO.Rules) == 0 {
			return fmt.Errorf("scenario %q: slo needs at least one rule", sp.Name)
		}
		for ri, r := range sp.SLO.Rules {
			if r.For < 1 || r.For > sp.SLO.Windows {
				return fmt.Errorf("scenario %q: slo rules[%d]: for=%d out of [1, %d] (line %d)",
					sp.Name, ri, r.For, sp.SLO.Windows, r.Line)
			}
			switch r.Kind {
			case "p999_above":
				if r.BoundMS <= 0 {
					return fmt.Errorf("scenario %q: slo rules[%d]: p999_above needs bound_ms > 0 (line %d)", sp.Name, ri, r.Line)
				}
			case "goodput_below":
				if r.FloorRPS <= 0 {
					return fmt.Errorf("scenario %q: slo rules[%d]: goodput_below needs floor_rps > 0 (line %d)", sp.Name, ri, r.Line)
				}
			case "error_rate_above":
				if r.Ceiling < 0 || r.Ceiling >= 1 {
					return fmt.Errorf("scenario %q: slo rules[%d]: error_rate_above needs ceiling in [0, 1) (line %d)", sp.Name, ri, r.Line)
				}
			}
			switch r.Severity {
			case "warn", "page":
			default:
				return fmt.Errorf("scenario %q: slo rules[%d]: unknown severity %q (want warn, page) (line %d)",
					sp.Name, ri, r.Severity, r.Line)
			}
		}
	}
	totalMachines := f.Shards * f.Machines
	totalStores := f.Shards * w.Stores
	for i, ev := range sp.Events {
		if i > 0 && ev.AtMS < sp.Events[i-1].AtMS {
			return fmt.Errorf("events must be in non-decreasing time order: events[%d] at_ms=%g is earlier than events[%d] at_ms=%g (line %d)",
				i, ev.AtMS, i-1, sp.Events[i-1].AtMS, ev.Line)
		}
		if ev.AtMS < 0 || ev.AtMS > sp.HorizonMS {
			return fmt.Errorf("events[%d]: at_ms=%g outside the run horizon [0, %g] (line %d)", i, ev.AtMS, sp.HorizonMS, ev.Line)
		}
		switch ev.Kind {
		case KindCrash, KindRestart:
			if ev.Machine < 0 || ev.Machine >= totalMachines {
				return fmt.Errorf("events[%d]: machine %d out of range [0, %d) (line %d)", i, ev.Machine, totalMachines, ev.Line)
			}
			if ev.Machine%f.Machines == 0 {
				return fmt.Errorf("events[%d]: machine %d is a shard front end (servers + failure monitor) and cannot be %sed (line %d)",
					i, ev.Machine, ev.Kind, ev.Line)
			}
		case KindPartition, KindDegrade, KindHeal:
			if ev.A < 0 || ev.A >= totalMachines || ev.B < 0 || ev.B >= totalMachines {
				return fmt.Errorf("events[%d]: link %d-%d out of range [0, %d) (line %d)", i, ev.A, ev.B, totalMachines, ev.Line)
			}
			if ev.A == ev.B {
				return fmt.Errorf("events[%d]: link endpoints must differ (line %d)", i, ev.Line)
			}
			if ev.A/f.Machines != ev.B/f.Machines {
				return fmt.Errorf("events[%d]: link %d-%d crosses shards (%d and %d); link faults are shard-local (line %d)",
					i, ev.A, ev.B, ev.A/f.Machines, ev.B/f.Machines, ev.Line)
			}
			if ev.Kind == KindDegrade && (ev.Drop < 0 || ev.Drop > 1) {
				return fmt.Errorf("events[%d]: drop must be in [0, 1] (got %g) (line %d)", i, ev.Drop, ev.Line)
			}
		case KindSpike:
			if !tenants[ev.Tenant] {
				return fmt.Errorf("events[%d]: spike targets unknown tenant %q (line %d)", i, ev.Tenant, ev.Line)
			}
			if math.IsNaN(ev.Mult) || ev.Mult < 1 {
				return fmt.Errorf("events[%d]: spike mult must be >= 1 (line %d)", i, ev.Line)
			}
			if ev.RampMS <= 0 || ev.HoldMS < 0 || ev.DecayMS <= 0 {
				return fmt.Errorf("events[%d]: spike needs ramp_ms > 0, hold_ms >= 0, decay_ms > 0 (line %d)", i, ev.Line)
			}
		case KindMigrate:
			if ev.Store < 0 || ev.Store >= totalStores {
				return fmt.Errorf("events[%d]: store %d out of range [0, %d) (line %d)", i, ev.Store, totalStores, ev.Line)
			}
			if ev.To < 0 || ev.To >= totalMachines {
				return fmt.Errorf("events[%d]: destination machine %d out of range [0, %d) (line %d)", i, ev.To, totalMachines, ev.Line)
			}
			if ev.Store/w.Stores != ev.To/f.Machines {
				return fmt.Errorf("events[%d]: store %d (shard %d) cannot migrate to machine %d (shard %d); migration is shard-local (line %d)",
					i, ev.Store, ev.Store/w.Stores, ev.To, ev.To/f.Machines, ev.Line)
			}
			if ev.To%f.Machines == 0 {
				return fmt.Errorf("events[%d]: machine %d is a shard front end; stores live on machines 1.. (line %d)", i, ev.To, ev.Line)
			}
		case KindGPUXid, KindGPUThrottle, KindGPUHeal:
			if len(f.GPUs) == 0 {
				return fmt.Errorf("events[%d]: %s requires fleet.gpus device classes (line %d)", i, ev.Kind, ev.Line)
			}
			if ev.Machine < 0 || ev.Machine >= totalMachines {
				return fmt.Errorf("events[%d]: machine %d out of range [0, %d) (line %d)", i, ev.Machine, totalMachines, ev.Line)
			}
			if ev.Machine%f.Machines == 0 {
				return fmt.Errorf("events[%d]: machine %d is a shard front end and hosts no GPUs (line %d)", i, ev.Machine, ev.Line)
			}
			if per := f.GPUsPerMachine(); ev.GPU < 0 || ev.GPU >= per {
				return fmt.Errorf("events[%d]: gpu %d out of range [0, %d) (line %d)", i, ev.GPU, per, ev.Line)
			}
			if ev.Kind == KindGPUThrottle {
				if ev.Factor == 0 && ev.StallEveryN == 0 {
					return fmt.Errorf("events[%d]: gpu_throttle needs factor > 1 and/or stall_every > 0 (line %d)", i, ev.Line)
				}
				if ev.Factor != 0 && ev.Factor <= 1 {
					return fmt.Errorf("events[%d]: gpu_throttle factor must be > 1 (got %g) (line %d)", i, ev.Factor, ev.Line)
				}
				if ev.StallEveryN > 0 && ev.StallUS <= 0 {
					return fmt.Errorf("events[%d]: gpu_throttle stall_every needs stall_us > 0 (line %d)", i, ev.Line)
				}
			}
		}
	}
	return nil
}

// sortedKeys returns m's keys ascending — the fixed iteration order
// every golden-record walk uses so runs stay deterministic.
func sortedKeys(m map[uint64]struct{}) []uint64 {
	keys := make([]uint64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
