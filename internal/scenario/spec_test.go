package scenario

import (
	"strings"
	"testing"
)

// minimal is the smallest valid scenario; error-path cases below are
// perturbations of it.
const minimal = `name: mini
horizon_ms: 4
fleet:
  machines: 3
workload:
  stores: 2
  objects: 32
  tenants:
    - name: web
      rate: 50000
`

func TestParseMinimalDefaults(t *testing.T) {
	sp, err := Parse(minimal)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Seed != 1 {
		t.Errorf("default seed = %d, want 1", sp.Seed)
	}
	if sp.Fleet.Shards != 1 || sp.Fleet.Cores != 4 || sp.Fleet.MemMB != 64 {
		t.Errorf("fleet defaults = %+v", sp.Fleet)
	}
	if sp.Workload.RF != 1 || sp.Workload.Servers != 4 || sp.Workload.BatchMax != 32 {
		t.Errorf("workload defaults = %+v", sp.Workload)
	}
	if sp.Workload.Tenants[0].Curve != "constant" {
		t.Errorf("default curve = %q, want constant", sp.Workload.Tenants[0].Curve)
	}
	if sp.BucketMS <= 0 || sp.DrainMS <= 0 || sp.Workload.SampleStepMS <= 0 {
		t.Errorf("derived defaults not applied: bucket=%g drain=%g step=%g",
			sp.BucketMS, sp.DrainMS, sp.Workload.SampleStepMS)
	}
	if sp.RecoveryFrac != 0.9 {
		t.Errorf("recovery_frac default = %g, want 0.9", sp.RecoveryFrac)
	}
}

// TestParseErrorPaths is the issue's required error-path matrix: every
// malformed scenario must be rejected with a precise, line-anchored
// message — never a panic, never a silent default.
func TestParseErrorPaths(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{
			"malformed yaml",
			"name: x\n\tbad: 1\n",
			"line 2: tab in indentation (use spaces)",
		},
		{
			"unknown top-level field",
			minimal + "colour: blue\n",
			`unknown top-level field "colour" (line 11)`,
		},
		{
			"unknown event kind",
			minimal + "events:\n  - at_ms: 1\n    kind: explode\n    machine: 1\n",
			`events[0]: unknown event kind "explode" (want crash, restart, partition, degrade, heal, spike, migrate, gpu_xid, gpu_throttle, gpu_heal) (line 13)`,
		},
		{
			"event missing kind",
			minimal + "events:\n  - at_ms: 1\n    machine: 1\n",
			`events[0]: missing "kind" (line 12)`,
		},
		{
			"out-of-order timestamps",
			minimal + "events:\n  - at_ms: 3\n    kind: crash\n    machine: 1\n  - at_ms: 1\n    kind: restart\n    machine: 1\n",
			"events must be in non-decreasing time order: events[1] at_ms=1 is earlier than events[0] at_ms=3 (line 15)",
		},
		{
			"event beyond horizon",
			minimal + "events:\n  - at_ms: 9\n    kind: crash\n    machine: 1\n",
			"events[0]: at_ms=9 outside the run horizon [0, 4]",
		},
		{
			"unknown assertion metric",
			minimal + "assertions:\n  - metric: happiness\n    op: \">\"\n    value: 0\n",
			`assertions[0]: unknown metric "happiness"`,
		},
		{
			"unknown assertion op",
			minimal + "assertions:\n  - metric: lost\n    op: \"~=\"\n    value: 0\n",
			`assertions[0]: unknown comparison op "~=" (want ==, !=, <, <=, >, >=)`,
		},
		{
			"assertion bound type mismatch",
			minimal + "assertions:\n  - metric: lost\n    op: ==\n    value: zero\n",
			`expected a number, got "zero" (line 14)`,
		},
		{
			"assertion missing value",
			minimal + "assertions:\n  - metric: lost\n    op: ==\n",
			`assertions[0]: missing "value" (line 12)`,
		},
		{
			"crash on front end",
			minimal + "events:\n  - at_ms: 1\n    kind: crash\n    machine: 0\n",
			"machine 0 is a shard front end (servers + failure monitor) and cannot be crashed",
		},
		{
			"crash out of range",
			minimal + "events:\n  - at_ms: 1\n    kind: crash\n    machine: 7\n",
			"events[0]: machine 7 out of range [0, 3)",
		},
		{
			"partition self link",
			minimal + "events:\n  - at_ms: 1\n    kind: partition\n    a: 1\n    b: 1\n",
			"events[0]: link endpoints must differ",
		},
		{
			"spike unknown tenant",
			minimal + "events:\n  - at_ms: 1\n    kind: spike\n    tenant: ghost\n    mult: 2\n    ramp_ms: 1\n    decay_ms: 1\n",
			`events[0]: spike targets unknown tenant "ghost"`,
		},
		{
			"migrate to front end",
			minimal + "events:\n  - at_ms: 1\n    kind: migrate\n    store: 0\n    to: 0\n",
			"machine 0 is a shard front end; stores live on machines 1..",
		},
		{
			"rf too high",
			strings.Replace(minimal, "  stores: 2\n", "  stores: 2\n  rf: 3\n", 1),
			"rf must be in [1, machines-1] (got rf=3 with 3 machines/shard)",
		},
		{
			"rebuild with rf>1",
			strings.Replace(minimal, "  stores: 2\n", "  stores: 2\n  rf: 2\n  rebuild: true\n", 1),
			"rebuild is an rf=1 fallback; at rf=2 durability must come from replication alone",
		},
		{
			"missing name",
			strings.Replace(minimal, "name: mini\n", "", 1),
			`scenario is missing "name"`,
		},
		{
			"no tenants",
			strings.Replace(minimal, "  tenants:\n    - name: web\n      rate: 50000\n", "", 1),
			"workload needs at least one tenant",
		},
		{
			"duplicate tenant",
			minimal + "    - name: web\n      rate: 1\n",
			`duplicate tenant "web"`,
		},
		{
			"unknown curve",
			strings.Replace(minimal, "      rate: 50000\n", "      rate: 50000\n      curve: sawtooth\n", 1),
			`unknown curve "sawtooth" (want constant, diurnal, ramp)`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			if err == nil {
				t.Fatalf("Parse accepted invalid scenario:\n%s", tc.src)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error = %q\nwant substring %q", err, tc.want)
			}
		})
	}
}

func TestEventEndMSAndString(t *testing.T) {
	sp, err := Parse(minimal +
		"events:\n" +
		"  - at_ms: 1\n    kind: spike\n    tenant: web\n    mult: 3\n    ramp_ms: 1\n    hold_ms: 2\n    decay_ms: 1\n" +
		"  - at_ms: 2\n    kind: crash\n    machine: 1\n")
	if err != nil {
		t.Fatal(err)
	}
	if got := sp.Events[0].EndMS(); got != 5 {
		t.Errorf("spike EndMS = %g, want 5 (1+1+2+1)", got)
	}
	if got := sp.Events[1].EndMS(); got != 2 {
		t.Errorf("crash EndMS = %g, want 2", got)
	}
	if s := sp.Events[1].String(); !strings.Contains(s, "crash") {
		t.Errorf("Event.String() = %q, want kind name in it", s)
	}
}

// miniGPU extends the minimal scenario with a GPU pool and a trainer.
const miniGPU = `name: mini-gpu
horizon_ms: 4
fleet:
  machines: 3
  gpus:
    - count: 2
      mem_mb: 256
      class: a100
      speed: 2
    - count: 1
      mem_mb: 128
      link_gbps: 8
      class: t4
      speed: 0.5
workload:
  stores: 2
  objects: 32
  tenants:
    - name: web
      rate: 50000
  trainers:
    count: 1
    model_mb: 64
    step_us: 500
    batch_kb: 64
    checkpoint_kb: 128
    snapshot_every: 16
`

func TestParseGPUConfig(t *testing.T) {
	sp, err := Parse(miniGPU +
		"events:\n" +
		"  - at_ms: 1\n    kind: gpu_throttle\n    machine: 1\n    gpu: 2\n    factor: 3\n    stall_every: 4\n    stall_us: 200\n" +
		"  - at_ms: 2\n    kind: gpu_xid\n    machine: 2\n    gpu: 0\n    xid: 48\n" +
		"  - at_ms: 3\n    kind: gpu_heal\n    machine: 1\n    gpu: 2\n")
	if err != nil {
		t.Fatal(err)
	}
	f := sp.Fleet
	if len(f.GPUs) != 2 || f.GPUsPerMachine() != 3 {
		t.Fatalf("gpus = %+v, want 2 classes, 3 devices per machine", f.GPUs)
	}
	if f.GPUs[0].Class != "a100" || f.GPUs[0].Speed != 2 || f.GPUs[0].LinkGBps != 16 {
		t.Errorf("class 0 = %+v, want a100 speed 2 default link 16", f.GPUs[0])
	}
	if f.GPUs[1].Count != 1 || f.GPUs[1].LinkGBps != 8 || f.GPUs[1].Speed != 0.5 {
		t.Errorf("class 1 = %+v", f.GPUs[1])
	}
	tr := sp.Workload.Trainers
	if tr.Count != 1 || tr.ModelMB != 64 || tr.StepUS != 500 || tr.BatchKB != 64 ||
		tr.CheckpointKB != 128 || tr.SnapshotEvery != 16 {
		t.Errorf("trainers = %+v", tr)
	}
	if sp.Events[0].Factor != 3 || sp.Events[0].StallEveryN != 4 || sp.Events[0].StallUS != 200 {
		t.Errorf("throttle event = %+v", sp.Events[0])
	}
	if sp.Events[1].Xid != 48 {
		t.Errorf("xid = %d, want 48", sp.Events[1].Xid)
	}
	for i, want := range []string{
		"gpu_throttle m1/gpu2 x3 stall 200us/4 @1ms",
		"gpu_xid m2/gpu0 xid=48 @2ms",
		"gpu_heal m1/gpu2 @3ms",
	} {
		if got := sp.Events[i].String(); got != want {
			t.Errorf("events[%d].String() = %q, want %q", i, got, want)
		}
	}
}

func TestParseGPUDefaultXid(t *testing.T) {
	sp, err := Parse(miniGPU + "events:\n  - at_ms: 1\n    kind: gpu_xid\n    machine: 1\n    gpu: 0\n")
	if err != nil {
		t.Fatal(err)
	}
	if sp.Events[0].Xid != 79 {
		t.Errorf("default xid = %d, want 79 (GPU fell off the bus)", sp.Events[0].Xid)
	}
}

func TestParseGPUErrorPaths(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{
			"gpu event without gpus",
			minimal + "events:\n  - at_ms: 1\n    kind: gpu_xid\n    machine: 1\n    gpu: 0\n",
			"events[0]: gpu_xid requires fleet.gpus device classes",
		},
		{
			"trainers without gpus",
			minimal + "  trainers:\n    count: 1\n    model_mb: 64\n    step_us: 500\n",
			"trainers need fleet.gpus device classes",
		},
		{
			"gpu event on front end",
			miniGPU + "events:\n  - at_ms: 1\n    kind: gpu_xid\n    machine: 0\n    gpu: 0\n",
			"machine 0 is a shard front end and hosts no GPUs",
		},
		{
			"gpu index out of range",
			miniGPU + "events:\n  - at_ms: 1\n    kind: gpu_heal\n    machine: 1\n    gpu: 3\n",
			"events[0]: gpu 3 out of range [0, 3)",
		},
		{
			"gpu index missing",
			miniGPU + "events:\n  - at_ms: 1\n    kind: gpu_xid\n    machine: 1\n",
			"events[0]: gpu -1 out of range [0, 3)",
		},
		{
			"throttle without parameters",
			miniGPU + "events:\n  - at_ms: 1\n    kind: gpu_throttle\n    machine: 1\n    gpu: 0\n",
			"gpu_throttle needs factor > 1 and/or stall_every > 0",
		},
		{
			"throttle factor too small",
			miniGPU + "events:\n  - at_ms: 1\n    kind: gpu_throttle\n    machine: 1\n    gpu: 0\n    factor: 0.5\n",
			"gpu_throttle factor must be > 1 (got 0.5)",
		},
		{
			"stutter without stall length",
			miniGPU + "events:\n  - at_ms: 1\n    kind: gpu_throttle\n    machine: 1\n    gpu: 0\n    stall_every: 3\n",
			"gpu_throttle stall_every needs stall_us > 0",
		},
		{
			"bad gpu class",
			strings.Replace(miniGPU, "      speed: 0.5\n", "      speed: -1\n", 1),
			"gpus[1] needs count >= 1, mem_mb >= 1, link_gbps > 0, speed > 0",
		},
		{
			"trainer missing model",
			strings.Replace(miniGPU, "    model_mb: 64\n", "", 1),
			"trainers need model_mb >= 1 and step_us > 0",
		},
		{
			"unknown trainer field",
			strings.Replace(miniGPU, "    count: 1\n", "    count: 1\n    optimizer: adam\n", 1),
			`trainers: unknown field "optimizer"`,
		},
		{
			"unknown gpu field",
			strings.Replace(miniGPU, "      class: a100\n", "      class: a100\n      hbm: 3\n", 1),
			`gpus[0]: unknown field "hbm"`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			if err == nil {
				t.Fatalf("Parse accepted invalid scenario:\n%s", tc.src)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error = %q\nwant substring %q", err, tc.want)
			}
		})
	}
}
