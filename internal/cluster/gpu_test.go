package cluster

import (
	"errors"
	"testing"
	"time"

	"repro/internal/sim"
)

func gpuMachine(t *testing.T, gpus int) (*sim.Kernel, *Machine) {
	t.Helper()
	k := sim.NewKernel(1)
	m := NewMachine(k, 0, "m", MachineConfig{Cores: 8, MemBytes: 1 << 30})
	m.AddGPUs(GPUConfig{Count: gpus, MemBytes: 4 << 30, LinkBandwidth: 1_000_000_000})
	return k, m
}

func TestAddGPUsAndAccessors(t *testing.T) {
	_, m := gpuMachine(t, 3)
	if m.NumGPUs() != 3 || len(m.GPUs()) != 3 {
		t.Fatalf("NumGPUs = %d", m.NumGPUs())
	}
	if m.GPU(0) == nil || m.GPU(3) != nil || m.GPU(-1) != nil {
		t.Error("GPU() bounds broken")
	}
	if m.GPULinkBandwidth() != 1_000_000_000 {
		t.Errorf("link bw = %d", m.GPULinkBandwidth())
	}
	if m.GPU(1).String() != "m0/gpu1" {
		t.Errorf("String = %q", m.GPU(1).String())
	}
	if !m.GPU(0).Available() {
		t.Error("new GPU not available")
	}
}

func TestAddGPUsTwicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	_, m := gpuMachine(t, 1)
	m.AddGPUs(GPUConfig{Count: 1, MemBytes: 1, LinkBandwidth: 1})
}

func TestAddGPUsZeroCountNoop(t *testing.T) {
	k := sim.NewKernel(1)
	m := NewMachine(k, 0, "m", MachineConfig{Cores: 1})
	m.AddGPUs(GPUConfig{Count: 0})
	if m.NumGPUs() != 0 {
		t.Errorf("NumGPUs = %d", m.NumGPUs())
	}
}

func TestDefaultGPUConfig(t *testing.T) {
	cfg := DefaultGPUConfig(4)
	if cfg.Count != 4 || cfg.MemBytes <= 0 || cfg.LinkBandwidth <= 0 {
		t.Errorf("DefaultGPUConfig = %+v", cfg)
	}
}

func TestGPUKernelSerialization(t *testing.T) {
	k, m := gpuMachine(t, 1)
	g := m.GPU(0)
	var d1, d2 sim.Time
	k.Spawn("a", func(p *sim.Proc) {
		g.ExecKernel(p, 4*time.Millisecond)
		d1 = p.Now()
	})
	k.Spawn("b", func(p *sim.Proc) {
		g.ExecKernel(p, 4*time.Millisecond)
		d2 = p.Now()
	})
	k.Run()
	if d1 != 4*sim.Millisecond || d2 != 8*sim.Millisecond {
		t.Errorf("kernels at %v/%v, want 4ms/8ms (serialized)", d1, d2)
	}
	if g.KernelSeconds != 0.008 {
		t.Errorf("KernelSeconds = %v", g.KernelSeconds)
	}
}

func TestGPULinkSerialization(t *testing.T) {
	k, m := gpuMachine(t, 2)
	g0, g1 := m.GPU(0), m.GPU(1)
	var up, down, other sim.Time
	k.Spawn("a", func(p *sim.Proc) {
		g0.Upload(p, 1_000_000) // 1ms at 1GB/s
		up = p.Now()
		g0.Download(p, 1_000_000)
		down = p.Now()
	})
	// A different GPU's link is independent.
	k.Spawn("b", func(p *sim.Proc) {
		g1.Upload(p, 1_000_000)
		other = p.Now()
	})
	k.Run()
	if up != sim.Millisecond || down != 2*sim.Millisecond {
		t.Errorf("g0 transfers at %v/%v, want 1ms/2ms (serialized per link)", up, down)
	}
	if other != sim.Millisecond {
		t.Errorf("g1 transfer at %v, want 1ms (independent link)", other)
	}
}

func TestGPUZeroTransfersFree(t *testing.T) {
	k, m := gpuMachine(t, 1)
	g := m.GPU(0)
	k.Spawn("a", func(p *sim.Proc) {
		g.Upload(p, 0)
		g.ExecKernel(p, 0)
		if p.Now() != 0 {
			t.Errorf("zero-cost ops advanced time to %v", p.Now())
		}
	})
	k.Run()
}

func TestGPUMemBounds(t *testing.T) {
	_, m := gpuMachine(t, 1)
	g := m.GPU(0)
	if err := g.AllocMem(4 << 30); err != nil {
		t.Fatal(err)
	}
	if err := g.AllocMem(1); !errors.Is(err, ErrNoMemory) {
		t.Errorf("err = %v", err)
	}
	if g.MemFree() != 0 || g.MemUsed() != 4<<30 {
		t.Errorf("free=%d used=%d", g.MemFree(), g.MemUsed())
	}
	g.FreeMem(4 << 30)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on over-free")
		}
	}()
	g.FreeMem(1)
}
