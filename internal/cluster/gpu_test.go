package cluster

import (
	"errors"
	"testing"
	"time"

	"repro/internal/sim"
)

func gpuMachine(t *testing.T, gpus int) (*sim.Kernel, *Machine) {
	t.Helper()
	k := sim.NewKernel(1)
	m := NewMachine(k, 0, "m", MachineConfig{Cores: 8, MemBytes: 1 << 30})
	m.AddGPUs(GPUConfig{Count: gpus, MemBytes: 4 << 30, LinkBandwidth: 1_000_000_000})
	return k, m
}

func TestAddGPUsAndAccessors(t *testing.T) {
	_, m := gpuMachine(t, 3)
	if m.NumGPUs() != 3 || len(m.GPUs()) != 3 {
		t.Fatalf("NumGPUs = %d", m.NumGPUs())
	}
	if m.GPU(0) == nil || m.GPU(3) != nil || m.GPU(-1) != nil {
		t.Error("GPU() bounds broken")
	}
	if m.GPULinkBandwidth() != 1_000_000_000 {
		t.Errorf("link bw = %d", m.GPULinkBandwidth())
	}
	if m.GPU(1).String() != "m0/gpu1" {
		t.Errorf("String = %q", m.GPU(1).String())
	}
	if !m.GPU(0).Available() {
		t.Error("new GPU not available")
	}
}

func TestAddGPUsTwicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	_, m := gpuMachine(t, 1)
	m.AddGPUs(GPUConfig{Count: 1, MemBytes: 1, LinkBandwidth: 1})
}

func TestAddGPUsZeroCountNoop(t *testing.T) {
	k := sim.NewKernel(1)
	m := NewMachine(k, 0, "m", MachineConfig{Cores: 1})
	m.AddGPUs(GPUConfig{Count: 0})
	if m.NumGPUs() != 0 {
		t.Errorf("NumGPUs = %d", m.NumGPUs())
	}
}

func TestDefaultGPUConfig(t *testing.T) {
	cfg := DefaultGPUConfig(4)
	if cfg.Count != 4 || cfg.MemBytes <= 0 || cfg.LinkBandwidth <= 0 {
		t.Errorf("DefaultGPUConfig = %+v", cfg)
	}
}

func TestGPUKernelSerialization(t *testing.T) {
	k, m := gpuMachine(t, 1)
	g := m.GPU(0)
	var d1, d2 sim.Time
	k.Spawn("a", func(p *sim.Proc) {
		g.ExecKernel(p, 4*time.Millisecond)
		d1 = p.Now()
	})
	k.Spawn("b", func(p *sim.Proc) {
		g.ExecKernel(p, 4*time.Millisecond)
		d2 = p.Now()
	})
	k.Run()
	if d1 != 4*sim.Millisecond || d2 != 8*sim.Millisecond {
		t.Errorf("kernels at %v/%v, want 4ms/8ms (serialized)", d1, d2)
	}
	if g.KernelSeconds != 0.008 {
		t.Errorf("KernelSeconds = %v", g.KernelSeconds)
	}
}

func TestGPULinkSerialization(t *testing.T) {
	k, m := gpuMachine(t, 2)
	g0, g1 := m.GPU(0), m.GPU(1)
	var up, down, other sim.Time
	k.Spawn("a", func(p *sim.Proc) {
		g0.Upload(p, 1_000_000) // 1ms at 1GB/s
		up = p.Now()
		g0.Download(p, 1_000_000)
		down = p.Now()
	})
	// A different GPU's link is independent.
	k.Spawn("b", func(p *sim.Proc) {
		g1.Upload(p, 1_000_000)
		other = p.Now()
	})
	k.Run()
	if up != sim.Millisecond || down != 2*sim.Millisecond {
		t.Errorf("g0 transfers at %v/%v, want 1ms/2ms (serialized per link)", up, down)
	}
	if other != sim.Millisecond {
		t.Errorf("g1 transfer at %v, want 1ms (independent link)", other)
	}
}

func TestGPUZeroTransfersFree(t *testing.T) {
	k, m := gpuMachine(t, 1)
	g := m.GPU(0)
	k.Spawn("a", func(p *sim.Proc) {
		g.Upload(p, 0)
		g.ExecKernel(p, 0)
		if p.Now() != 0 {
			t.Errorf("zero-cost ops advanced time to %v", p.Now())
		}
	})
	k.Run()
}

func TestAddGPUsHeterogeneousClasses(t *testing.T) {
	k := sim.NewKernel(1)
	m := NewMachine(k, 0, "m", MachineConfig{Cores: 8, MemBytes: 1 << 30})
	m.AddGPUs(
		GPUConfig{Count: 2, MemBytes: 8 << 30, LinkBandwidth: 2_000_000_000, Class: "h100", Speed: 2},
		GPUConfig{Count: 1, MemBytes: 4 << 30, LinkBandwidth: 1_000_000_000, Class: "t4", Speed: 0.5},
	)
	if m.NumGPUs() != 3 {
		t.Fatalf("NumGPUs = %d", m.NumGPUs())
	}
	fast, slow := m.GPU(0), m.GPU(2)
	if fast.Class() != "h100" || fast.Speed() != 2 || fast.MemCapacity() != 8<<30 {
		t.Errorf("fast class = %q speed=%v cap=%d", fast.Class(), fast.Speed(), fast.MemCapacity())
	}
	if slow.Class() != "t4" || slow.Speed() != 0.5 || slow.LinkBandwidth() != 1_000_000_000 {
		t.Errorf("slow class = %q speed=%v bw=%d", slow.Class(), slow.Speed(), slow.LinkBandwidth())
	}
	// Machine-level bandwidth reports the first class.
	if m.GPULinkBandwidth() != 2_000_000_000 {
		t.Errorf("machine link bw = %d", m.GPULinkBandwidth())
	}
	// A 4ms baseline kernel runs in 2ms on the 2x class, 8ms on the 0.5x.
	var tFast, tSlow sim.Time
	k.Spawn("a", func(p *sim.Proc) {
		fast.ExecKernel(p, 4*time.Millisecond)
		tFast = p.Now()
	})
	k.Spawn("b", func(p *sim.Proc) {
		slow.ExecKernel(p, 4*time.Millisecond)
		tSlow = p.Now()
	})
	k.Run()
	if tFast != 2*sim.Millisecond || tSlow != 8*sim.Millisecond {
		t.Errorf("kernel done at %v/%v, want 2ms/8ms", tFast, tSlow)
	}
}

func TestGPUThermalThrottle(t *testing.T) {
	k, m := gpuMachine(t, 1)
	g := m.GPU(0)
	g.SetThrottle(2.5)
	if !g.Degraded() || g.Throttle() != 2.5 || g.EffectiveSpeed() != 0.4 {
		t.Errorf("throttle=%v eff=%v", g.Throttle(), g.EffectiveSpeed())
	}
	k.Spawn("a", func(p *sim.Proc) {
		g.ExecKernel(p, 4*time.Millisecond)
		if p.Now() != 10*sim.Millisecond {
			t.Errorf("throttled kernel done at %v, want 10ms", p.Now())
		}
		g.Heal()
		g.ExecKernel(p, 4*time.Millisecond)
		if p.Now() != 14*sim.Millisecond {
			t.Errorf("healed kernel done at %v, want 14ms", p.Now())
		}
	})
	k.Run()
	if g.Degraded() {
		t.Error("still degraded after Heal")
	}
}

func TestGPUThrottleBelowOnePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	_, m := gpuMachine(t, 1)
	m.GPU(0).SetThrottle(0.5)
}

func TestGPUECCStutter(t *testing.T) {
	k, m := gpuMachine(t, 1)
	g := m.GPU(0)
	g.SetStutter(3, 5*time.Millisecond) // every 3rd kernel stalls 5ms
	if !g.Stuttering() || !g.Degraded() {
		t.Error("stutter not reported")
	}
	k.Spawn("a", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			g.ExecKernel(p, time.Millisecond)
		}
		// 1 + 1 + (1+5) = 8ms.
		if p.Now() != 8*sim.Millisecond {
			t.Errorf("3 stuttering kernels done at %v, want 8ms", p.Now())
		}
	})
	k.Run()
	g.SetStutter(0, 0)
	if g.Stuttering() {
		t.Error("stutter not cleared")
	}
}

func TestGPUXidFail(t *testing.T) {
	_, m := gpuMachine(t, 1)
	g := m.GPU(0)
	if g.Failed() || !g.Healthy() || g.Xid() != 0 {
		t.Fatal("fresh GPU reports failure")
	}
	g.Fail(79) // XID 79: GPU fell off the bus
	if !g.Failed() || g.Healthy() || g.Xid() != 79 || g.EffectiveSpeed() != 0 {
		t.Errorf("failed=%v healthy=%v xid=%d eff=%v", g.Failed(), g.Healthy(), g.Xid(), g.EffectiveSpeed())
	}
	if !g.Available() {
		t.Error("Fail must not change spot availability")
	}
	g.Heal()
	if g.Failed() || g.Xid() != 0 || !g.Healthy() {
		t.Error("Heal did not clear XID state")
	}
	// Reclaimed but unfailed: not healthy either.
	g.SetAvailable(false)
	if g.Healthy() || g.EffectiveSpeed() != 0 {
		t.Error("reclaimed GPU reports healthy")
	}
}

func TestGPUQueueWaitReturns(t *testing.T) {
	k, m := gpuMachine(t, 1)
	g := m.GPU(0)
	var waitA, waitB, waitUp time.Duration
	k.Spawn("a", func(p *sim.Proc) {
		waitA = g.ExecKernel(p, 4*time.Millisecond)
	})
	k.Spawn("b", func(p *sim.Proc) {
		waitB = g.ExecKernel(p, 4*time.Millisecond)
		waitUp = g.Upload(p, 1_000_000)
	})
	k.Run()
	if waitA != 0 || waitB != 4*time.Millisecond {
		t.Errorf("queue waits %v/%v, want 0/4ms", waitA, waitB)
	}
	if waitUp != 0 {
		t.Errorf("upload wait = %v, want 0 (idle link)", waitUp)
	}
}

func TestGPUMemBounds(t *testing.T) {
	_, m := gpuMachine(t, 1)
	g := m.GPU(0)
	if err := g.AllocMem(4 << 30); err != nil {
		t.Fatal(err)
	}
	if err := g.AllocMem(1); !errors.Is(err, ErrNoMemory) {
		t.Errorf("err = %v", err)
	}
	if g.MemFree() != 0 || g.MemUsed() != 4<<30 {
		t.Errorf("free=%d used=%d", g.MemFree(), g.MemUsed())
	}
	g.FreeMem(4 << 30)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on over-free")
		}
	}()
	g.FreeMem(1)
}
