package cluster

import (
	"fmt"
	"time"

	"repro/internal/sim"
)

// GPU models one accelerator attached to a machine: device memory,
// serialized kernel execution, and a host link (PCIe) whose bandwidth
// governs batch uploads and device-state transfers. Spot GPUs can be
// reclaimed and returned at runtime via SetAvailable.
type GPU struct {
	Machine *Machine
	Index   int

	memCap  int64
	memUsed int64

	execFree sim.Time // kernels serialize on the device
	linkFree sim.Time // host<->device transfers serialize on the link

	available bool

	// KernelSeconds accumulates device-busy time.
	KernelSeconds float64
}

// GPUConfig sizes a machine's accelerators.
type GPUConfig struct {
	// Count is the number of GPUs on the machine.
	Count int
	// MemBytes is device memory per GPU.
	MemBytes int64
	// LinkBandwidth is host<->device bandwidth in bytes/second
	// (PCIe-class; also used for device-to-device via host).
	LinkBandwidth int64
}

// DefaultGPUConfig models a datacenter training accelerator.
func DefaultGPUConfig(count int) GPUConfig {
	return GPUConfig{
		Count:         count,
		MemBytes:      16 << 30,
		LinkBandwidth: 16_000_000_000, // 16 GB/s
	}
}

// AddGPUs attaches accelerators to the machine. Call once, before the
// simulation starts.
func (m *Machine) AddGPUs(cfg GPUConfig) {
	if len(m.gpus) > 0 {
		panic("cluster: GPUs already attached")
	}
	if cfg.Count <= 0 {
		return
	}
	if cfg.LinkBandwidth <= 0 {
		panic("cluster: GPU link bandwidth must be positive")
	}
	m.gpuLinkBw = cfg.LinkBandwidth
	for i := 0; i < cfg.Count; i++ {
		m.gpus = append(m.gpus, &GPU{
			Machine:   m,
			Index:     i,
			memCap:    cfg.MemBytes,
			available: true,
		})
	}
}

// NumGPUs returns how many GPUs the machine has.
func (m *Machine) NumGPUs() int { return len(m.gpus) }

// GPU returns the i-th GPU, or nil.
func (m *Machine) GPU(i int) *GPU {
	if i < 0 || i >= len(m.gpus) {
		return nil
	}
	return m.gpus[i]
}

// GPUs returns all GPUs on the machine (not a copy).
func (m *Machine) GPUs() []*GPU { return m.gpus }

// GPULinkBandwidth returns the host<->device bandwidth.
func (m *Machine) GPULinkBandwidth() int64 { return m.gpuLinkBw }

// String identifies the GPU.
func (g *GPU) String() string { return fmt.Sprintf("m%d/gpu%d", g.Machine.ID, g.Index) }

// Available reports whether the GPU is currently usable (spot GPUs can
// be reclaimed by the provider).
func (g *GPU) Available() bool { return g.available }

// SetAvailable marks the GPU reclaimed (false) or returned (true).
func (g *GPU) SetAvailable(a bool) { g.available = a }

// MemFree returns unallocated device memory.
func (g *GPU) MemFree() int64 { return g.memCap - g.memUsed }

// MemUsed returns allocated device memory.
func (g *GPU) MemUsed() int64 { return g.memUsed }

// AllocMem reserves device memory.
func (g *GPU) AllocMem(bytes int64) error {
	if bytes < 0 {
		panic("cluster: negative GPU allocation")
	}
	if g.memUsed+bytes > g.memCap {
		return fmt.Errorf("%w: %s: %d requested, %d free", ErrNoMemory, g, bytes, g.MemFree())
	}
	g.memUsed += bytes
	return nil
}

// FreeMem releases device memory.
func (g *GPU) FreeMem(bytes int64) {
	if bytes < 0 || bytes > g.memUsed {
		panic(fmt.Sprintf("cluster: bad GPU free of %d (used %d)", bytes, g.memUsed))
	}
	g.memUsed -= bytes
}

// ExecKernel runs d of device time, blocking the calling process.
// Kernels serialize on the device.
func (g *GPU) ExecKernel(p *sim.Proc, d time.Duration) {
	if d <= 0 {
		return
	}
	k := g.Machine.k
	start := k.Now()
	if g.execFree > start {
		start = g.execFree
	}
	end := start.Add(d)
	g.execFree = end
	g.KernelSeconds += d.Seconds()
	p.SleepUntil(end)
}

// Upload transfers bytes from the host to the device over the link,
// blocking the calling process. Transfers serialize on the link.
func (g *GPU) Upload(p *sim.Proc, bytes int64) {
	g.linkTransfer(p, bytes)
}

// Download transfers bytes from the device to the host.
func (g *GPU) Download(p *sim.Proc, bytes int64) {
	g.linkTransfer(p, bytes)
}

func (g *GPU) linkTransfer(p *sim.Proc, bytes int64) {
	if bytes <= 0 {
		return
	}
	k := g.Machine.k
	start := k.Now()
	if g.linkFree > start {
		start = g.linkFree
	}
	dur := time.Duration(float64(bytes) / float64(g.Machine.gpuLinkBw) * 1e9)
	end := start.Add(dur)
	g.linkFree = end
	p.SleepUntil(end)
}
