package cluster

import (
	"fmt"
	"time"

	"repro/internal/sim"
)

// GPU models one accelerator attached to a machine: device memory,
// serialized kernel execution, and a host link (PCIe) whose bandwidth
// governs batch uploads and device-state transfers. Devices are
// heterogeneous — each belongs to a class with its own throughput
// multiplier, memory size, and link speed — and unreliable:
//
//   - Spot GPUs can be reclaimed and returned at runtime via
//     SetAvailable. A reclaimed device keeps its memory readable for the
//     provider's grace window, so state can be evacuated.
//   - Fail(xid) is a fatal XID-style device error: the device stops
//     executing and its memory contents are gone. Recovery must come
//     from state kept elsewhere (a checkpoint).
//   - SetThrottle models thermal throttling: every kernel runs slower
//     by a multiplicative factor until the device heals.
//   - SetStutter models ECC pressure: every Nth kernel stalls for a
//     fixed extra duration (retired-page scrubbing, ECC replays).
//
// All failure state changes are plain field writes driven from kernel
// context (fault schedules, tests), so runs remain deterministic.
type GPU struct {
	Machine *Machine
	Index   int

	class  string
	speed  float64 // kernel-throughput multiplier (1.0 = baseline class)
	linkBw int64   // host<->device bytes/second

	memCap  int64
	memUsed int64

	execFree sim.Time // kernels serialize on the device
	linkFree sim.Time // host<->device transfers serialize on the link

	available bool

	// Gray-failure state.
	failed     bool
	xid        int
	throttle   float64 // >= 1; kernel durations multiply by this
	stallEvery int64   // every Nth kernel stalls (0 = no stutter)
	stall      time.Duration
	kernels    int64 // kernels launched, drives the stutter cadence

	// KernelSeconds accumulates device-busy time.
	KernelSeconds float64
}

// GPUConfig sizes one class of accelerators on a machine.
type GPUConfig struct {
	// Count is the number of GPUs of this class.
	Count int
	// MemBytes is device memory per GPU.
	MemBytes int64
	// LinkBandwidth is host<->device bandwidth in bytes/second
	// (PCIe-class; also used for device-to-device via host).
	LinkBandwidth int64
	// Class names the device class ("a100"; defaults to "gpu").
	Class string
	// Speed is the kernel-throughput multiplier relative to the
	// baseline class: a kernel declared as d runs in d/Speed device
	// time. 0 means 1.0.
	Speed float64
}

// DefaultGPUConfig models a datacenter training accelerator.
func DefaultGPUConfig(count int) GPUConfig {
	return GPUConfig{
		Count:         count,
		MemBytes:      16 << 30,
		LinkBandwidth: 16_000_000_000, // 16 GB/s
	}
}

// AddGPUs attaches accelerators to the machine — one or more classes,
// indexed in declaration order. Call once, before the simulation
// starts.
func (m *Machine) AddGPUs(cfgs ...GPUConfig) {
	if len(m.gpus) > 0 {
		panic("cluster: GPUs already attached")
	}
	for _, cfg := range cfgs {
		if cfg.Count <= 0 {
			continue
		}
		if cfg.LinkBandwidth <= 0 {
			panic("cluster: GPU link bandwidth must be positive")
		}
		if cfg.Speed < 0 {
			panic("cluster: GPU speed must be non-negative")
		}
		if m.gpuLinkBw == 0 {
			m.gpuLinkBw = cfg.LinkBandwidth
		}
		speed := cfg.Speed
		if speed == 0 {
			speed = 1
		}
		class := cfg.Class
		if class == "" {
			class = "gpu"
		}
		for i := 0; i < cfg.Count; i++ {
			m.gpus = append(m.gpus, &GPU{
				Machine:   m,
				Index:     len(m.gpus),
				class:     class,
				speed:     speed,
				linkBw:    cfg.LinkBandwidth,
				memCap:    cfg.MemBytes,
				available: true,
				throttle:  1,
			})
		}
	}
}

// NumGPUs returns how many GPUs the machine has.
func (m *Machine) NumGPUs() int { return len(m.gpus) }

// GPU returns the i-th GPU, or nil.
func (m *Machine) GPU(i int) *GPU {
	if i < 0 || i >= len(m.gpus) {
		return nil
	}
	return m.gpus[i]
}

// GPUs returns all GPUs on the machine (not a copy).
func (m *Machine) GPUs() []*GPU { return m.gpus }

// GPULinkBandwidth returns the host<->device bandwidth of the
// machine's first GPU class.
func (m *Machine) GPULinkBandwidth() int64 { return m.gpuLinkBw }

// String identifies the GPU.
func (g *GPU) String() string { return fmt.Sprintf("m%d/gpu%d", g.Machine.ID, g.Index) }

// Class returns the device class name.
func (g *GPU) Class() string { return g.class }

// Speed returns the class throughput multiplier.
func (g *GPU) Speed() float64 { return g.speed }

// LinkBandwidth returns this device's host-link bytes/second.
func (g *GPU) LinkBandwidth() int64 { return g.linkBw }

// Available reports whether the GPU is currently allocated to us (spot
// GPUs can be reclaimed by the provider). An available device may
// still be Failed.
func (g *GPU) Available() bool { return g.available }

// SetAvailable marks the GPU reclaimed (false) or returned (true).
func (g *GPU) SetAvailable(a bool) { g.available = a }

// Failed reports whether the device hit a fatal XID-style error. A
// failed device executes nothing and its memory contents are lost.
func (g *GPU) Failed() bool { return g.failed }

// Xid returns the fatal error code from the last Fail (0 if none).
func (g *GPU) Xid() int { return g.xid }

// Fail injects a fatal device error with the given XID code. Memory
// accounting is untouched (owners still release their reservations),
// but the contents are unrecoverable: evacuation by Download is not an
// option, only checkpoint-based re-placement is.
func (g *GPU) Fail(xid int) {
	g.failed = true
	g.xid = xid
}

// Healthy reports whether the device can run kernels at all: allocated
// to us and not failed. Throttled or stuttering devices are unhealthy
// performers but still Healthy here.
func (g *GPU) Healthy() bool { return g.available && !g.failed }

// Throttle returns the current thermal slowdown factor (1 = nominal).
func (g *GPU) Throttle() float64 { return g.throttle }

// SetThrottle sets the thermal slowdown factor; every kernel's
// duration multiplies by it. factor < 1 panics.
func (g *GPU) SetThrottle(factor float64) {
	if factor < 1 {
		panic(fmt.Sprintf("cluster: GPU throttle factor %v < 1", factor))
	}
	g.throttle = factor
}

// SetStutter makes every Nth kernel stall for d on top of its runtime
// (ECC replays, page retirement scrubbing). every <= 0 clears it.
func (g *GPU) SetStutter(every int, d time.Duration) {
	if every <= 0 {
		g.stallEvery, g.stall = 0, 0
		return
	}
	g.stallEvery, g.stall = int64(every), d
}

// Stuttering reports whether an ECC stutter pattern is active.
func (g *GPU) Stuttering() bool { return g.stallEvery > 0 }

// Degraded reports whether the device runs slower than its class
// nominal (thermal throttle or ECC stutter) without being failed.
func (g *GPU) Degraded() bool { return g.throttle > 1 || g.stallEvery > 0 }

// Heal clears all gray-failure state: the device is replaced or
// recovered — unfailed, unthrottled, stutter-free. Memory accounting
// and availability are untouched.
func (g *GPU) Heal() {
	g.failed = false
	g.xid = 0
	g.throttle = 1
	g.stallEvery = 0
	g.stall = 0
}

// EffectiveSpeed is the throughput the device delivers right now,
// relative to a baseline-class device at nominal temperature:
// class speed divided by the thermal throttle. Stutter is excluded —
// it is intermittent, and shows up in step-latency telemetry instead.
// A failed or reclaimed device has effective speed 0.
func (g *GPU) EffectiveSpeed() float64 {
	if !g.Healthy() {
		return 0
	}
	return g.speed / g.throttle
}

// MemFree returns unallocated device memory.
func (g *GPU) MemFree() int64 { return g.memCap - g.memUsed }

// MemUsed returns allocated device memory.
func (g *GPU) MemUsed() int64 { return g.memUsed }

// MemCapacity returns total device memory.
func (g *GPU) MemCapacity() int64 { return g.memCap }

// AllocMem reserves device memory.
func (g *GPU) AllocMem(bytes int64) error {
	if bytes < 0 {
		panic("cluster: negative GPU allocation")
	}
	if g.memUsed+bytes > g.memCap {
		return fmt.Errorf("%w: %s: %d requested, %d free", ErrNoMemory, g, bytes, g.MemFree())
	}
	g.memUsed += bytes
	return nil
}

// FreeMem releases device memory.
func (g *GPU) FreeMem(bytes int64) {
	if bytes < 0 || bytes > g.memUsed {
		panic(fmt.Sprintf("cluster: bad GPU free of %d (used %d)", bytes, g.memUsed))
	}
	g.memUsed -= bytes
}

// ExecKernel runs a kernel declared as d of baseline device time,
// blocking the calling process. The actual duration is d scaled by the
// class speed and the thermal throttle, plus the ECC stall when the
// stutter cadence hits. Kernels serialize on the device. The returned
// duration is the queueing delay: how long the kernel waited for the
// device before starting.
func (g *GPU) ExecKernel(p *sim.Proc, d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	k := g.Machine.k
	now := k.Now()
	start := now
	if g.execFree > start {
		start = g.execFree
	}
	eff := time.Duration(float64(d) / g.speed * g.throttle)
	g.kernels++
	if g.stallEvery > 0 && g.kernels%g.stallEvery == 0 {
		eff += g.stall
	}
	end := start.Add(eff)
	g.execFree = end
	g.KernelSeconds += eff.Seconds()
	p.SleepUntil(end)
	return time.Duration(start - now)
}

// Upload transfers bytes from the host to the device over the link,
// blocking the calling process. Transfers serialize on the link. The
// returned duration is the time spent queued behind earlier transfers.
func (g *GPU) Upload(p *sim.Proc, bytes int64) time.Duration {
	return g.linkTransfer(p, bytes)
}

// Download transfers bytes from the device to the host.
func (g *GPU) Download(p *sim.Proc, bytes int64) time.Duration {
	return g.linkTransfer(p, bytes)
}

func (g *GPU) linkTransfer(p *sim.Proc, bytes int64) time.Duration {
	if bytes <= 0 {
		return 0
	}
	k := g.Machine.k
	now := k.Now()
	start := now
	if g.linkFree > start {
		start = g.linkFree
	}
	dur := time.Duration(float64(bytes) / float64(g.linkBw) * 1e9)
	end := start.Add(dur)
	g.linkFree = end
	p.SleepUntil(end)
	return time.Duration(start - now)
}
