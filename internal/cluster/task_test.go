package cluster

import (
	"testing"
	"time"

	"repro/internal/sim"
)

func TestTaskCancelReturnsRemaining(t *testing.T) {
	k, m := newTestMachine(t, 1, 0)
	var canceled bool
	var remaining time.Duration
	var wokeAt sim.Time
	var task *Task
	k.Spawn("w", func(p *sim.Proc) {
		task = m.Submit(10 * time.Millisecond)
		canceled, remaining = task.Wait(p)
		wokeAt = p.Now()
	})
	k.Schedule(4*sim.Millisecond, func() { task.Cancel() })
	k.Run()
	if !canceled {
		t.Fatal("task not reported canceled")
	}
	if remaining != 6*time.Millisecond {
		t.Errorf("remaining = %v, want 6ms", remaining)
	}
	if wokeAt != 4*sim.Millisecond {
		t.Errorf("waiter woke at %v, want 4ms", wokeAt)
	}
}

func TestTaskCancelUnderSharing(t *testing.T) {
	// Two tasks on one core, each 10ms; cancel one at t=4ms. It ran at
	// 0.5x so 8ms remains. The survivor then speeds up to 1x.
	k, m := newTestMachine(t, 1, 0)
	var rem time.Duration
	var doneSurvivor sim.Time
	var victim *Task
	k.Spawn("victim", func(p *sim.Proc) {
		victim = m.Submit(10 * time.Millisecond)
		_, rem = victim.Wait(p)
	})
	k.Spawn("survivor", func(p *sim.Proc) {
		m.Exec(p, 10*time.Millisecond)
		doneSurvivor = p.Now()
	})
	k.Schedule(4*sim.Millisecond, func() { victim.Cancel() })
	k.Run()
	if rem != 8*time.Millisecond {
		t.Errorf("victim remaining = %v, want 8ms", rem)
	}
	// Survivor: 2ms done by t=4ms, then 8ms at full speed -> t=12ms.
	if doneSurvivor != 12*sim.Millisecond {
		t.Errorf("survivor finished at %v, want 12ms", doneSurvivor)
	}
}

func TestTaskCancelFinishedNoop(t *testing.T) {
	k, m := newTestMachine(t, 1, 0)
	var task *Task
	k.Spawn("w", func(p *sim.Proc) {
		task = m.Submit(time.Millisecond)
		task.Wait(p)
	})
	k.Run()
	task.Cancel() // must not panic or corrupt state
	if task.Canceled() {
		t.Error("finished task reported canceled after late Cancel")
	}
	if m.Runnable() != 0 {
		t.Errorf("Runnable = %d, want 0", m.Runnable())
	}
}

func TestTaskWaitAfterCompletion(t *testing.T) {
	k, m := newTestMachine(t, 1, 0)
	var task *Task
	k.Spawn("submitter", func(p *sim.Proc) {
		task = m.Submit(time.Millisecond)
		p.Sleep(5 * time.Millisecond)
		canceled, _ := task.Wait(p) // already done: returns immediately
		if canceled {
			t.Error("completed task reported canceled")
		}
		if p.Now() != 5*sim.Millisecond {
			t.Errorf("Wait blocked until %v", p.Now())
		}
	})
	k.Run()
}

func TestTaskCancelStalledByReservation(t *testing.T) {
	// With all cores reserved the task makes zero progress; cancel must
	// return the full work.
	k, m := newTestMachine(t, 2, 0)
	m.SetReserved(2)
	var rem time.Duration
	var task *Task
	k.Spawn("w", func(p *sim.Proc) {
		task = m.Submit(7 * time.Millisecond)
		_, rem = task.Wait(p)
	})
	k.Schedule(50*sim.Millisecond, func() { task.Cancel() })
	k.Run()
	if rem != 7*time.Millisecond {
		t.Errorf("remaining = %v, want full 7ms", rem)
	}
}
