package cluster

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/simnet"
)

// Cluster bundles a set of machines with the network fabric that
// connects them. Machine IDs and fabric node IDs coincide.
type Cluster struct {
	K      *sim.Kernel
	Fabric *simnet.Fabric

	machines []*Machine
	byID     map[MachineID]*Machine
}

// New creates an empty cluster on the kernel with the given network.
func New(k *sim.Kernel, netCfg simnet.Config) *Cluster {
	return &Cluster{
		K:      k,
		Fabric: simnet.New(k, netCfg),
		byID:   make(map[MachineID]*Machine),
	}
}

// AddMachine creates a machine, attaches it to the fabric, and returns
// it. IDs are assigned sequentially from 0.
func (c *Cluster) AddMachine(cfg MachineConfig) *Machine {
	id := MachineID(len(c.machines))
	m := NewMachine(c.K, id, fmt.Sprintf("m%d", id), cfg)
	c.machines = append(c.machines, m)
	c.byID[id] = m
	c.Fabric.AddNode(simnet.NodeID(id))
	return m
}

// Machines returns all machines in ID order (not a copy).
func (c *Cluster) Machines() []*Machine { return c.machines }

// Machine returns the machine with the given ID, or nil.
func (c *Cluster) Machine(id MachineID) *Machine { return c.byID[id] }

// NumMachines returns the machine count.
func (c *Cluster) NumMachines() int { return len(c.machines) }

// TotalCores sums core capacity across machines.
func (c *Cluster) TotalCores() float64 {
	var sum float64
	for _, m := range c.machines {
		sum += m.Cores()
	}
	return sum
}

// TotalMem sums memory capacity across machines.
func (c *Cluster) TotalMem() int64 {
	var sum int64
	for _, m := range c.machines {
		sum += m.MemCapacity()
	}
	return sum
}

// Node returns the fabric node for a machine.
func (c *Cluster) Node(id MachineID) *simnet.Node {
	return c.Fabric.Node(simnet.NodeID(id))
}
