package cluster

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/sim"
	"repro/internal/simnet"
)

func newTestMachine(t *testing.T, cores float64, mem int64) (*sim.Kernel, *Machine) {
	t.Helper()
	k := sim.NewKernel(1)
	m := NewMachine(k, 0, "m0", MachineConfig{Cores: cores, MemBytes: mem})
	return k, m
}

func TestExecSingleTask(t *testing.T) {
	k, m := newTestMachine(t, 4, 0)
	var done sim.Time
	k.Spawn("w", func(p *sim.Proc) {
		m.Exec(p, 10*time.Millisecond)
		done = p.Now()
	})
	k.Run()
	if done != 10*sim.Millisecond {
		t.Errorf("single task finished at %v, want 10ms", done)
	}
}

func TestExecOneTaskCappedAtOneCore(t *testing.T) {
	// A single-threaded task cannot exploit more than one core.
	k, m := newTestMachine(t, 16, 0)
	var done sim.Time
	k.Spawn("w", func(p *sim.Proc) {
		m.Exec(p, 8*time.Millisecond)
		done = p.Now()
	})
	k.Run()
	if done != 8*sim.Millisecond {
		t.Errorf("finished at %v, want 8ms (1-core cap)", done)
	}
}

func TestExecProcessorSharing(t *testing.T) {
	// Two tasks on one core: each runs at 0.5x, finishing at 20ms.
	k, m := newTestMachine(t, 1, 0)
	var done [2]sim.Time
	for i := 0; i < 2; i++ {
		i := i
		k.Spawn("w", func(p *sim.Proc) {
			m.Exec(p, 10*time.Millisecond)
			done[i] = p.Now()
		})
	}
	k.Run()
	for i, d := range done {
		if d != 20*sim.Millisecond {
			t.Errorf("task %d finished at %v, want 20ms", i, d)
		}
	}
}

func TestExecStaggeredArrival(t *testing.T) {
	// Task A (10ms work) starts alone on 1 core; at t=5ms task B (2.5ms
	// work) arrives. They share: A has 5ms left at rate 0.5 and B 2.5ms
	// at 0.5. B finishes at 5+5=10ms; A then runs alone, finishing its
	// remaining 2.5ms by 12.5ms.
	k, m := newTestMachine(t, 1, 0)
	var doneA, doneB sim.Time
	k.Spawn("a", func(p *sim.Proc) {
		m.Exec(p, 10*time.Millisecond)
		doneA = p.Now()
	})
	k.Spawn("b", func(p *sim.Proc) {
		p.Sleep(5 * time.Millisecond)
		m.Exec(p, 2500*time.Microsecond)
		doneB = p.Now()
	})
	k.Run()
	if doneB != 10*sim.Millisecond {
		t.Errorf("B finished at %v, want 10ms", doneB)
	}
	if doneA != 12500*sim.Microsecond {
		t.Errorf("A finished at %v, want 12.5ms", doneA)
	}
}

func TestExecManyTasksOnManyCores(t *testing.T) {
	// 8 equal tasks on 4 cores: each gets 0.5 cores, all finish at 2x.
	k, m := newTestMachine(t, 4, 0)
	finished := 0
	var last sim.Time
	for i := 0; i < 8; i++ {
		k.Spawn("w", func(p *sim.Proc) {
			m.Exec(p, 6*time.Millisecond)
			finished++
			last = p.Now()
		})
	}
	k.Run()
	if finished != 8 {
		t.Fatalf("finished = %d, want 8", finished)
	}
	if last != 12*sim.Millisecond {
		t.Errorf("all finished at %v, want 12ms", last)
	}
}

func TestSetReservedStallsAndResumes(t *testing.T) {
	k, m := newTestMachine(t, 2, 0)
	var done sim.Time
	k.Spawn("w", func(p *sim.Proc) {
		m.Exec(p, 10*time.Millisecond)
		done = p.Now()
	})
	// Reserve everything during [2ms, 7ms): the task makes no progress
	// for 5ms, so it finishes at 15ms instead of 10ms.
	k.Schedule(2*sim.Millisecond, func() { m.SetReserved(2) })
	k.Schedule(7*sim.Millisecond, func() { m.SetReserved(0) })
	k.Run()
	if done != 15*sim.Millisecond {
		t.Errorf("task finished at %v, want 15ms", done)
	}
}

func TestSetReservedPartial(t *testing.T) {
	// 2 cores, 2 tasks; reserving 1 core from t=0 gives each task 0.5.
	k, m := newTestMachine(t, 2, 0)
	m.SetReserved(1)
	var done sim.Time
	for i := 0; i < 2; i++ {
		k.Spawn("w", func(p *sim.Proc) {
			m.Exec(p, 4*time.Millisecond)
			done = p.Now()
		})
	}
	k.Run()
	if done != 8*sim.Millisecond {
		t.Errorf("finished at %v, want 8ms", done)
	}
}

func TestCoreSecondsAccounting(t *testing.T) {
	k, m := newTestMachine(t, 4, 0)
	for i := 0; i < 3; i++ {
		k.Spawn("w", func(p *sim.Proc) {
			m.Exec(p, 5*time.Millisecond)
		})
	}
	k.Run()
	want := 3 * 0.005
	if math.Abs(m.CoreSeconds-want) > 1e-9 {
		t.Errorf("CoreSeconds = %v, want %v", m.CoreSeconds, want)
	}
}

func TestPressureSignals(t *testing.T) {
	k, m := newTestMachine(t, 2, 1000)
	if m.CPUPressure() != 0 {
		t.Errorf("idle pressure = %v, want 0", m.CPUPressure())
	}
	k.Spawn("load", func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			k.Spawn("w", func(q *sim.Proc) { m.Exec(q, time.Millisecond) })
		}
		p.Yield()
		if got := m.CPUPressure(); got != 2 {
			t.Errorf("pressure = %v, want 2 (4 tasks / 2 cores)", got)
		}
		if got := m.Utilization(); got != 1 {
			t.Errorf("utilization = %v, want 1", got)
		}
		m.SetReserved(2)
		if !math.IsInf(m.CPUPressure(), 1) {
			t.Errorf("pressure with zero capacity = %v, want +Inf", m.CPUPressure())
		}
		m.SetReserved(0)
	})
	k.Run()
}

func TestMemoryAccounting(t *testing.T) {
	_, m := newTestMachine(t, 1, 1000)
	if err := m.AllocMem(600); err != nil {
		t.Fatalf("AllocMem: %v", err)
	}
	if err := m.AllocMem(500); !errors.Is(err, ErrNoMemory) {
		t.Fatalf("overcommit err = %v, want ErrNoMemory", err)
	}
	if m.MemUsed() != 600 || m.MemFree() != 400 {
		t.Errorf("used/free = %d/%d, want 600/400", m.MemUsed(), m.MemFree())
	}
	if m.MemPressure() != 0.6 {
		t.Errorf("MemPressure = %v, want 0.6", m.MemPressure())
	}
	m.FreeMem(600)
	if m.MemUsed() != 0 {
		t.Errorf("used = %d after free, want 0", m.MemUsed())
	}
}

func TestFreeTooMuchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	_, m := newTestMachine(t, 1, 1000)
	m.FreeMem(1)
}

func TestUtilizationSeries(t *testing.T) {
	k, m := newTestMachine(t, 2, 0)
	util := m.TrackUtilization()
	k.Spawn("w", func(p *sim.Proc) {
		m.Exec(p, 5*time.Millisecond)
	})
	k.Run()
	if v, ok := util.At(sim.Millisecond); !ok || v != 1 {
		t.Errorf("busy cores during run = %v,%v, want 1,true", v, ok)
	}
	if v, _ := util.At(6 * sim.Millisecond); v != 0 {
		t.Errorf("busy cores after run = %v, want 0", v)
	}
}

func TestClusterWiring(t *testing.T) {
	k := sim.NewKernel(1)
	c := New(k, simnet.DefaultConfig())
	m0 := c.AddMachine(MachineConfig{Cores: 8, MemBytes: 1 << 30})
	m1 := c.AddMachine(MachineConfig{Cores: 16, MemBytes: 2 << 30})
	if m0.ID != 0 || m1.ID != 1 {
		t.Errorf("IDs = %d,%d, want 0,1", m0.ID, m1.ID)
	}
	if c.NumMachines() != 2 {
		t.Errorf("NumMachines = %d", c.NumMachines())
	}
	if c.TotalCores() != 24 {
		t.Errorf("TotalCores = %v, want 24", c.TotalCores())
	}
	if c.TotalMem() != 3<<30 {
		t.Errorf("TotalMem = %d", c.TotalMem())
	}
	if c.Machine(1) != m1 || c.Machine(9) != nil {
		t.Error("Machine lookup broken")
	}
	if c.Node(0) == nil || c.Node(1) == nil {
		t.Error("fabric nodes missing")
	}
}

// Property: n equal tasks of work w on c cores finish together at
// max(w, n*w/c) (within float tolerance), and conservation holds:
// consumed core-seconds equal n*w.
func TestProcessorSharingConservationProperty(t *testing.T) {
	f := func(nRaw, cRaw uint8) bool {
		n := int(nRaw%12) + 1
		c := float64(cRaw%8) + 1
		work := 4 * time.Millisecond
		k := sim.NewKernel(1)
		m := NewMachine(k, 0, "m", MachineConfig{Cores: c})
		var last sim.Time
		for i := 0; i < n; i++ {
			k.Spawn("w", func(p *sim.Proc) {
				m.Exec(p, work)
				if p.Now() > last {
					last = p.Now()
				}
			})
		}
		k.Run()
		wantSec := math.Max(work.Seconds(), float64(n)*work.Seconds()/c)
		gotSec := last.Seconds()
		if math.Abs(gotSec-wantSec) > 1e-6 {
			return false
		}
		return math.Abs(m.CoreSeconds-float64(n)*work.Seconds()) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
