// Package cluster models the physical machines Quicksand runs on: CPU
// cores, memory capacity, and the pressure signals the scheduler reads.
//
// CPU is modeled as a processor-sharing server: every runnable task
// receives an equal share of the machine's available cores, capped at
// one core per task (tasks are single threads of execution; parallel
// work submits several tasks). High-priority co-located applications —
// such as Figure 1's latency-critical antagonist — are modeled as core
// *reservations* that modulate the capacity available to everything
// else, which is exactly how they affect a best-effort filler.
//
// The processor-sharing state uses the classic virtual-service-time
// formulation: because every resident task accrues service at the same
// instantaneous rate, the machine keeps one global attained-service
// accumulator A(t) = ∫rate·dt and each task records its finish point
// A(t₀) + work at submit. Settling elapsed time is O(1) instead of a
// walk over every task, and the next completion is the minimum finish
// point, tracked by an indexed min-heap.
package cluster

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// MachineID identifies a machine; it doubles as the machine's network
// node ID on the cluster fabric.
type MachineID int

// ErrNoMemory is returned when an allocation exceeds free memory.
var ErrNoMemory = errors.New("cluster: out of memory")

// ErrMachineDown is returned for resource requests against a crashed
// machine.
var ErrMachineDown = errors.New("cluster: machine is down")

// MachineConfig sizes a machine.
type MachineConfig struct {
	Cores    float64 // CPU capacity in cores
	MemBytes int64   // RAM capacity in bytes
}

// Task is one single-threaded unit of CPU work executing under
// processor sharing. Tasks are created with Submit and either run to
// completion or are canceled (for example when their proclet migrates
// and the remaining work should move to another machine).
type Task struct {
	m  *Machine
	id int64
	// vfinish is the machine attained-service value at which this task
	// completes: attained-at-submit + work. Remaining work at any
	// instant is vfinish - m.attained, computed lazily.
	vfinish   float64
	remaining float64 // core-nanoseconds left, settled at finish/cancel
	heapIdx   int     // position in m.taskHeap; -1 once retired
	done      sim.Cond
	finished  bool
	canceled  bool
}

// Canceled reports whether the task was canceled before completing.
func (t *Task) Canceled() bool { return t.canceled }

// Remaining returns the core-time the task still owes. It is only
// meaningful after cancellation (it is settled at cancel time).
func (t *Task) Remaining() time.Duration {
	if t.remaining < 0 {
		return 0
	}
	return time.Duration(math.Ceil(t.remaining))
}

// Wait blocks the calling process until the task completes or is
// canceled. It reports whether the task was canceled and, if so, how
// much work remains.
func (t *Task) Wait(p *sim.Proc) (canceled bool, remaining time.Duration) {
	if !t.finished {
		t.done.Wait(p)
	}
	if t.canceled {
		return true, t.Remaining()
	}
	return false, 0
}

// Cancel removes the task from the machine, settling its remaining
// work. Canceling a finished task is a no-op.
func (t *Task) Cancel() {
	if t.finished {
		return
	}
	m := t.m
	m.settle()
	t.remaining = t.vfinish - m.attained
	m.heapRemove(t.heapIdx)
	t.finished = true
	t.canceled = true
	t.done.Broadcast()
	m.recordUtil()
	m.reschedule()
}

// Machine is a simulated server.
type Machine struct {
	ID   MachineID
	Name string

	k   *sim.Kernel
	cfg MachineConfig

	// CPU processor-sharing state.
	taskHeap   []*Task // indexed min-heap on (vfinish, id)
	attained   float64 // A(t): per-task service accrued since creation, ns
	nextTaskID int64
	reserved   float64  // cores taken by high-priority work
	lastSettle sim.Time // last time attained service was settled
	gen        uint64   // invalidates stale completion events

	// completeFn is the machine's single long-lived completion callback;
	// reschedule arms it with the generation as the event tag, so
	// re-arming allocates nothing.
	completeFn func(gen uint64)

	// taskSlab block-allocates Task structs so high-churn workloads pay
	// one allocation per slabSize submissions instead of one each. Slots
	// are never recycled: a retired Task stays valid (Remaining, Wait,
	// Cancel are all legal on finished tasks) and its slab block is
	// garbage-collected once every task in it is unreachable.
	taskSlab []Task

	memUsed int64

	// Failure state: a down machine accepts no work and holds no memory.
	// epoch counts crashes, so bookkeeping done against the pre-crash
	// machine (a migration's pending FreeMem, a proclet's heap charge)
	// can detect that its allocation no longer exists.
	down  bool
	epoch uint64

	// Accelerators (see gpu.go).
	gpus      []*GPU
	gpuLinkBw int64

	// CoreSeconds accumulates CPU work completed on this machine, in
	// core-seconds. Reserved (antagonist) cores are not counted.
	CoreSeconds float64
	// Util, when non-nil, receives a busy-core sample at every CPU
	// state transition. Enable with TrackUtilization.
	Util *metrics.TimeSeries
	// MemSeries, when non-nil, receives memory-used samples on every
	// allocation change.
	MemSeries *metrics.TimeSeries
}

// NewMachine creates a standalone machine on the kernel. Most callers
// use Cluster.AddMachine instead.
func NewMachine(k *sim.Kernel, id MachineID, name string, cfg MachineConfig) *Machine {
	if cfg.Cores <= 0 {
		panic("cluster: machine needs positive core count")
	}
	if cfg.MemBytes < 0 {
		panic("cluster: negative memory capacity")
	}
	m := &Machine{
		ID:   id,
		Name: name,
		k:    k,
		cfg:  cfg,
	}
	m.completeFn = func(gen uint64) {
		if gen != m.gen {
			return
		}
		m.completeFinished()
	}
	return m
}

// Config returns the machine's static configuration.
func (m *Machine) Config() MachineConfig { return m.cfg }

// Cores returns the machine's total core count.
func (m *Machine) Cores() float64 { return m.cfg.Cores }

// TrackUtilization attaches a time series that records busy cores
// (including reserved capacity) at every transition.
func (m *Machine) TrackUtilization() *metrics.TimeSeries {
	m.Util = metrics.NewTimeSeries(fmt.Sprintf("machine-%d.busy_cores", m.ID))
	m.recordUtil()
	return m.Util
}

// TrackMemory attaches a time series recording bytes in use.
func (m *Machine) TrackMemory() *metrics.TimeSeries {
	m.MemSeries = metrics.NewTimeSeries(fmt.Sprintf("machine-%d.mem_used", m.ID))
	m.MemSeries.Add(m.k.Now(), float64(m.memUsed))
	return m.MemSeries
}

// availCores returns the capacity left after reservations.
func (m *Machine) availCores() float64 {
	a := m.cfg.Cores - m.reserved
	if a < 0 {
		return 0
	}
	return a
}

// AvailCores returns cores available to best-effort work.
func (m *Machine) AvailCores() float64 { return m.availCores() }

// Reserved returns the cores reserved for high-priority work.
func (m *Machine) Reserved() float64 { return m.reserved }

// Runnable returns the number of tasks currently executing or waiting
// for CPU share.
func (m *Machine) Runnable() int { return len(m.taskHeap) }

// perTaskRate returns the core share each task currently receives.
func (m *Machine) perTaskRate() float64 {
	n := len(m.taskHeap)
	if n == 0 {
		return 0
	}
	rate := m.availCores() / float64(n)
	if rate > 1 {
		rate = 1
	}
	return rate
}

// BusyCores returns cores currently in use, counting reservations.
func (m *Machine) BusyCores() float64 {
	return math.Min(m.reserved, m.cfg.Cores) + m.perTaskRate()*float64(len(m.taskHeap))
}

// Utilization returns BusyCores as a fraction of total cores.
func (m *Machine) Utilization() float64 { return m.BusyCores() / m.cfg.Cores }

// CPUPressure returns demand over available capacity for best-effort
// work: the number of runnable tasks divided by available cores.
// Values above 1 mean tasks are receiving less than a full core each;
// +Inf means work is queued against zero capacity.
func (m *Machine) CPUPressure() float64 {
	n := float64(len(m.taskHeap))
	if n == 0 {
		return 0
	}
	avail := m.availCores()
	if avail == 0 {
		return math.Inf(1)
	}
	return n / avail
}

// ---- indexed min-heap on (vfinish, id) ----

// taskLess orders resident tasks by finish point, breaking ties by
// submission order so simultaneous completions retire deterministically.
func taskLess(a, b *Task) bool {
	if a.vfinish != b.vfinish {
		return a.vfinish < b.vfinish
	}
	return a.id < b.id
}

func (m *Machine) heapPush(t *Task) {
	t.heapIdx = len(m.taskHeap)
	m.taskHeap = append(m.taskHeap, t)
	m.siftUp(t.heapIdx)
}

// heapRemove deletes the task at index i, keeping the heap ordered.
func (m *Machine) heapRemove(i int) {
	h := m.taskHeap
	n := len(h) - 1
	t := h[i]
	if i != n {
		h[i] = h[n]
		h[i].heapIdx = i
	}
	h[n] = nil
	m.taskHeap = h[:n]
	if i < n {
		if !m.siftDown(i) {
			m.siftUp(i)
		}
	}
	t.heapIdx = -1
}

func (m *Machine) siftUp(i int) {
	h := m.taskHeap
	for i > 0 {
		p := (i - 1) / 2
		if !taskLess(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		h[i].heapIdx, h[p].heapIdx = i, p
		i = p
	}
}

// siftDown restores heap order below i; it reports whether i moved.
func (m *Machine) siftDown(i int) bool {
	h := m.taskHeap
	n := len(h)
	i0 := i
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		c := l
		if r := l + 1; r < n && taskLess(h[r], h[l]) {
			c = r
		}
		if !taskLess(h[c], h[i]) {
			break
		}
		h[i], h[c] = h[c], h[i]
		h[i].heapIdx, h[c].heapIdx = i, c
		i = c
	}
	return i > i0
}

// settle advances the attained-service accumulator by the rate that has
// been in effect since the last settle. O(1): individual task balances
// are derived lazily from the accumulator.
func (m *Machine) settle() {
	now := m.k.Now()
	if now == m.lastSettle {
		return
	}
	elapsed := float64(now - m.lastSettle)
	rate := m.perTaskRate()
	if rate > 0 {
		m.attained += elapsed * rate
		m.CoreSeconds += elapsed * rate * float64(len(m.taskHeap)) / 1e9
	}
	m.lastSettle = now
}

// reschedule computes the next task completion and schedules it. Any
// previously scheduled completion event becomes stale via m.gen.
func (m *Machine) reschedule() {
	m.gen++
	rate := m.perTaskRate()
	if rate <= 0 || len(m.taskHeap) == 0 {
		return
	}
	minRem := m.taskHeap[0].vfinish - m.attained
	if minRem < 0 {
		minRem = 0
	}
	dt := time.Duration(math.Ceil(minRem / rate))
	m.k.AfterTagged(dt, m.completeFn, m.gen)
}

// completeFinished settles and retires every task whose work is done,
// in deterministic (finish point, submission) order.
func (m *Machine) completeFinished() {
	m.settle()
	const eps = 0.5 // sub-nanosecond residue from float math
	for len(m.taskHeap) > 0 && m.taskHeap[0].vfinish-m.attained <= eps {
		t := m.taskHeap[0]
		m.heapRemove(0)
		t.remaining = t.vfinish - m.attained
		t.finished = true
		t.done.Broadcast()
	}
	m.recordUtil()
	if len(m.taskHeap) == 0 {
		// Nothing left to complete: the event that brought us here was
		// the only live generation, so there is no stale completion to
		// invalidate and nothing to re-arm.
		return
	}
	m.reschedule()
}

func (m *Machine) recordUtil() {
	if m.Util != nil {
		m.Util.Add(m.k.Now(), m.BusyCores())
	}
}

// Down reports whether the machine is crashed.
func (m *Machine) Down() bool { return m.down }

// Epoch returns the machine's crash count. An allocation made at epoch
// e is gone — and must not be freed — once Epoch() != e.
func (m *Machine) Epoch() uint64 { return m.epoch }

// Crash fail-stops the machine: every resident task retires as canceled
// with its unfinished work as the remainder (so a resilient caller can
// resubmit it elsewhere), memory contents are lost, and the epoch is
// bumped. Crashing a down machine is a no-op.
func (m *Machine) Crash() {
	if m.down {
		return
	}
	m.settle()
	m.down = true
	m.epoch++
	for len(m.taskHeap) > 0 {
		t := m.taskHeap[0]
		m.heapRemove(0)
		t.remaining = t.vfinish - m.attained
		t.finished = true
		t.canceled = true
		t.done.Broadcast()
	}
	m.memUsed = 0
	if m.MemSeries != nil {
		m.MemSeries.Add(m.k.Now(), 0)
	}
	m.recordUtil()
	m.reschedule() // no tasks: just invalidates any pending completion
}

// Restart brings a crashed machine back online with empty memory and no
// resident tasks. Restarting a live machine is a no-op.
func (m *Machine) Restart() {
	if !m.down {
		return
	}
	m.settle()
	m.down = false
	m.recordUtil()
}

// Submit enqueues `work` of single-core CPU time and returns the task
// handle. The caller typically Waits on it; a controller may Cancel it.
// Work must be positive.
func (m *Machine) Submit(work time.Duration) *Task {
	if work <= 0 {
		panic("cluster: Submit requires positive work")
	}
	m.settle()
	m.nextTaskID++
	const slabSize = 64
	if len(m.taskSlab) == 0 {
		m.taskSlab = make([]Task, slabSize)
	}
	t := &m.taskSlab[0]
	m.taskSlab = m.taskSlab[1:]
	t.m = m
	t.id = m.nextTaskID
	if m.down {
		// A dead machine executes nothing: hand back the task already
		// canceled, with all of its work as the remainder.
		t.vfinish = m.attained + float64(work)
		t.remaining = float64(work)
		t.heapIdx = -1
		t.finished, t.canceled = true, true
		return t
	}
	t.vfinish = m.attained + float64(work)
	m.heapPush(t)
	m.recordUtil()
	m.reschedule()
	return t
}

// Exec runs `work` of single-core CPU time on the machine, blocking the
// calling process until the work completes under processor sharing.
// Zero or negative work returns immediately.
func (m *Machine) Exec(p *sim.Proc, work time.Duration) {
	if work <= 0 {
		return
	}
	m.Submit(work).Wait(p)
}

// SetReserved changes the cores reserved for high-priority work,
// immediately re-dividing the remainder among best-effort tasks.
func (m *Machine) SetReserved(cores float64) {
	if cores < 0 {
		panic("cluster: negative reservation")
	}
	m.settle()
	m.reserved = cores
	m.recordUtil()
	m.reschedule()
}

// AllocMem reserves bytes of RAM, failing with ErrNoMemory if the
// machine cannot hold them.
func (m *Machine) AllocMem(bytes int64) error {
	if bytes < 0 {
		panic("cluster: negative allocation")
	}
	if m.down {
		return fmt.Errorf("%w: machine %d", ErrMachineDown, m.ID)
	}
	if m.memUsed+bytes > m.cfg.MemBytes {
		return fmt.Errorf("%w: machine %d: %d requested, %d free",
			ErrNoMemory, m.ID, bytes, m.MemFree())
	}
	m.memUsed += bytes
	if m.MemSeries != nil {
		m.MemSeries.Add(m.k.Now(), float64(m.memUsed))
	}
	return nil
}

// FreeMem releases bytes of RAM.
func (m *Machine) FreeMem(bytes int64) {
	if bytes < 0 || bytes > m.memUsed {
		panic(fmt.Sprintf("cluster: bad free of %d bytes (used %d)", bytes, m.memUsed))
	}
	m.memUsed -= bytes
	if m.MemSeries != nil {
		m.MemSeries.Add(m.k.Now(), float64(m.memUsed))
	}
}

// MemUsed returns bytes currently allocated.
func (m *Machine) MemUsed() int64 { return m.memUsed }

// MemCapacity returns the machine's total RAM.
func (m *Machine) MemCapacity() int64 { return m.cfg.MemBytes }

// MemFree returns unallocated RAM.
func (m *Machine) MemFree() int64 { return m.cfg.MemBytes - m.memUsed }

// MemPressure returns used over capacity in [0,1].
func (m *Machine) MemPressure() float64 {
	if m.cfg.MemBytes == 0 {
		return 1
	}
	return float64(m.memUsed) / float64(m.cfg.MemBytes)
}
