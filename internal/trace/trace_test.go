package trace

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestEmitAndFilter(t *testing.T) {
	l := New()
	l.Emit(Event{At: 10, Kind: KindSpawn, Subject: "mem-1", To: 0, From: -1})
	l.Emitf(20, KindMigrate, "mem-1", 0, 1, "bytes=%d", 1024)
	l.Emit(Event{At: 30, Kind: KindSplit, Subject: "mem-1", From: -1, To: -1})
	if l.Len() != 3 {
		t.Fatalf("Len = %d, want 3", l.Len())
	}
	migs := l.Filter(KindMigrate)
	if len(migs) != 1 || migs[0].Detail != "bytes=1024" {
		t.Errorf("Filter(migrate) = %+v", migs)
	}
	if l.Count(KindSplit) != 1 || l.Count(KindMerge) != 0 {
		t.Error("Count wrong")
	}
}

func TestNilLogSafe(t *testing.T) {
	var l *Log
	l.Emit(Event{Kind: KindSpawn})
	l.Emitf(0, KindMigrate, "x", 0, 1, "d")
	if l.Len() != 0 || l.Events() != nil || l.Filter(KindSpawn) != nil || l.String() != "" {
		t.Error("nil log must discard everything")
	}
	if l.Count(KindSpawn) != 0 {
		t.Error("nil log Count must be 0")
	}
}

func TestCountDoesNotAllocate(t *testing.T) {
	l := New()
	for i := 0; i < 1000; i++ {
		l.Emitf(sim.Time(i), KindMigrate, "m", 0, 1, "")
	}
	allocs := testing.AllocsPerRun(100, func() {
		if l.Count(KindMigrate) != 1000 {
			t.Fatal("Count wrong")
		}
	})
	if allocs != 0 {
		t.Errorf("Count allocated %.1f objects per call, want 0", allocs)
	}
}

func TestEventString(t *testing.T) {
	e := Event{At: 1500, Kind: KindMigrate, Subject: "compute-3", From: 0, To: 2, Detail: "10MiB"}
	s := e.String()
	for _, want := range []string{"migrate", "compute-3", "0->2", "10MiB"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	// From/To omitted when both -1.
	e2 := Event{At: 1, Kind: KindSplit, Subject: "s", From: -1, To: -1}
	if strings.Contains(e2.String(), "->") {
		t.Errorf("String() = %q should omit arrow", e2.String())
	}
}

func TestLogString(t *testing.T) {
	l := New()
	l.Emitf(1, KindSpawn, "a", -1, 0, "")
	l.Emitf(2, KindDestroy, "a", 0, -1, "")
	out := l.String()
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 2 {
		t.Errorf("log dump = %q, want 2 lines", out)
	}
}

func TestMerge(t *testing.T) {
	mk := func(shard int, times ...int64) *Log {
		l := New()
		for i, at := range times {
			l.Emit(Event{At: sim.Time(at), Kind: KindPlace,
				Subject: fmt.Sprintf("s%d-e%d", shard, i), From: -1, To: -1})
		}
		return l
	}
	a := mk(0, 5, 10, 10, 30)
	b := mk(1, 1, 10, 20)
	c := mk(2, 10)

	m := Merge(a, b, c)
	if m.Len() != 8 {
		t.Fatalf("merged %d events, want 8", m.Len())
	}
	var got []string
	for _, e := range m.Events() {
		got = append(got, fmt.Sprintf("%d/%s", int64(e.At), e.Subject))
	}
	// Ordered by time; ties broken by argument position, preserving
	// within-log emission order.
	want := []string{"1/s1-e0", "5/s0-e0", "10/s0-e1", "10/s0-e2", "10/s1-e1", "10/s2-e0", "20/s1-e2", "30/s0-e3"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("merge order\n got %v\nwant %v", got, want)
	}

	// Deterministic: merging again yields the identical sequence, and
	// the inputs are untouched.
	m2 := Merge(a, b, c)
	if !reflect.DeepEqual(m.Events(), m2.Events()) {
		t.Fatal("two merges of the same logs differ")
	}
	if a.Len() != 4 || b.Len() != 3 || c.Len() != 1 {
		t.Fatal("Merge modified its inputs")
	}

	// Nil and empty logs are fine.
	if Merge(nil, New(), nil).Len() != 0 {
		t.Fatal("merge of nil/empty logs not empty")
	}
}

// Count is on experiment hot paths (per-op assertions); the shard-safe
// merge design must keep it allocation-free.
func TestCountAllocationFree(t *testing.T) {
	l := New()
	for i := 0; i < 1000; i++ {
		k := KindPlace
		if i%3 == 0 {
			k = KindMigrate
		}
		l.Emit(Event{At: sim.Time(i), Kind: k, From: -1, To: -1})
	}
	if avg := testing.AllocsPerRun(100, func() {
		if l.Count(KindMigrate) == 0 {
			t.Fatal("no migrate events")
		}
	}); avg != 0 {
		t.Fatalf("Count allocates %.1f per run, want 0", avg)
	}
}
