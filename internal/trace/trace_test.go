package trace

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestEmitAndFilter(t *testing.T) {
	l := New()
	l.Emit(Event{At: 10, Kind: KindSpawn, Subject: "mem-1", To: 0, From: -1})
	l.Emitf(20, KindMigrate, "mem-1", 0, 1, "bytes=%d", 1024)
	l.Emit(Event{At: 30, Kind: KindSplit, Subject: "mem-1", From: -1, To: -1})
	if l.Len() != 3 {
		t.Fatalf("Len = %d, want 3", l.Len())
	}
	migs := l.Filter(KindMigrate)
	if len(migs) != 1 || migs[0].Detail != "bytes=1024" {
		t.Errorf("Filter(migrate) = %+v", migs)
	}
	if l.Count(KindSplit) != 1 || l.Count(KindMerge) != 0 {
		t.Error("Count wrong")
	}
}

func TestNilLogSafe(t *testing.T) {
	var l *Log
	l.Emit(Event{Kind: KindSpawn})
	l.Emitf(0, KindMigrate, "x", 0, 1, "d")
	if l.Len() != 0 || l.Events() != nil || l.Filter(KindSpawn) != nil || l.String() != "" {
		t.Error("nil log must discard everything")
	}
	if l.Count(KindSpawn) != 0 {
		t.Error("nil log Count must be 0")
	}
}

func TestCountDoesNotAllocate(t *testing.T) {
	l := New()
	for i := 0; i < 1000; i++ {
		l.Emitf(sim.Time(i), KindMigrate, "m", 0, 1, "")
	}
	allocs := testing.AllocsPerRun(100, func() {
		if l.Count(KindMigrate) != 1000 {
			t.Fatal("Count wrong")
		}
	})
	if allocs != 0 {
		t.Errorf("Count allocated %.1f objects per call, want 0", allocs)
	}
}

func TestEventString(t *testing.T) {
	e := Event{At: 1500, Kind: KindMigrate, Subject: "compute-3", From: 0, To: 2, Detail: "10MiB"}
	s := e.String()
	for _, want := range []string{"migrate", "compute-3", "0->2", "10MiB"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	// From/To omitted when both -1.
	e2 := Event{At: 1, Kind: KindSplit, Subject: "s", From: -1, To: -1}
	if strings.Contains(e2.String(), "->") {
		t.Errorf("String() = %q should omit arrow", e2.String())
	}
}

func TestLogString(t *testing.T) {
	l := New()
	l.Emitf(1, KindSpawn, "a", -1, 0, "")
	l.Emitf(2, KindDestroy, "a", 0, -1, "")
	out := l.String()
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 2 {
		t.Errorf("log dump = %q, want 2 lines", out)
	}
}
