// Package trace records structured runtime events — placements,
// migrations, splits, merges — so experiments and tools can reconstruct
// what the Quicksand control plane did and when.
package trace

import (
	"fmt"
	"strings"

	"repro/internal/sim"
)

// Kind classifies a control-plane event.
type Kind string

// Event kinds emitted by the runtime and scheduler.
const (
	KindSpawn     Kind = "spawn"
	KindDestroy   Kind = "destroy"
	KindMigrate   Kind = "migrate"
	KindSplit     Kind = "split"
	KindMerge     Kind = "merge"
	KindPlace     Kind = "place"
	KindPressure  Kind = "pressure"
	KindRebalance Kind = "rebalance"
	KindCrash     Kind = "crash"    // a machine failed (fault injection)
	KindRecover   Kind = "recover"  // a machine restarted or a proclet was re-placed
	KindFault     Kind = "fault"    // a link fault was installed or healed
	KindSuspect   Kind = "suspect"  // a failure-detector state transition
	KindRepl      Kind = "repl"     // replication plane: ship, promote, depose, resync
	KindIncident  Kind = "incident" // SLO plane: an incident opened or closed
)

// Event is one control-plane occurrence. From/To are machine IDs (as
// ints to avoid layering on the cluster package); -1 means not
// applicable.
type Event struct {
	At      sim.Time
	Kind    Kind
	Subject string // proclet or resource name
	From    int
	To      int
	Detail  string
}

func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%12v %-9s %-24s", e.At, e.Kind, e.Subject)
	if e.From >= 0 || e.To >= 0 {
		fmt.Fprintf(&b, " %d->%d", e.From, e.To)
	}
	if e.Detail != "" {
		fmt.Fprintf(&b, " (%s)", e.Detail)
	}
	return b.String()
}

// Log is an append-only event log. A nil *Log is valid and discards
// events, so instrumented code never needs nil checks.
type Log struct {
	events []Event

	// OnEmit, when non-nil, observes every event as it is appended.
	// The flight recorder hangs its bounded ring off this hook; the
	// hook must not emit into the same log. When nil (the default)
	// Emit stays a bare append, so the disabled path costs nothing.
	OnEmit func(Event)
}

// New creates an empty log.
func New() *Log { return &Log{} }

// Emit appends an event. No-op on a nil log.
func (l *Log) Emit(e Event) {
	if l == nil {
		return
	}
	l.events = append(l.events, e)
	if l.OnEmit != nil {
		l.OnEmit(e)
	}
}

// Emitf is shorthand for Emit with a formatted detail string.
func (l *Log) Emitf(at sim.Time, kind Kind, subject string, from, to int, format string, args ...any) {
	if l == nil {
		return
	}
	l.Emit(Event{At: at, Kind: kind, Subject: subject, From: from, To: to,
		Detail: fmt.Sprintf(format, args...)})
}

// Events returns all events in emission order (not a copy).
func (l *Log) Events() []Event {
	if l == nil {
		return nil
	}
	return l.events
}

// Len returns the number of recorded events.
func (l *Log) Len() int {
	if l == nil {
		return 0
	}
	return len(l.events)
}

// Filter returns the events of the given kind, in order.
func (l *Log) Filter(kind Kind) []Event {
	if l == nil {
		return nil
	}
	var out []Event
	for _, e := range l.events {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// Count returns how many events of the given kind were recorded,
// without materializing the filtered slice.
func (l *Log) Count(kind Kind) int {
	if l == nil {
		return 0
	}
	n := 0
	for i := range l.events {
		if l.events[i].Kind == kind {
			n++
		}
	}
	return n
}

// Merge combines several logs into one, ordered by timestamp with ties
// broken by argument position (then by within-log emission order, which
// is preserved). This is the deterministic barrier merge for
// partitioned simulations: each shard keeps its own single-threaded Log
// as a per-shard accumulator — Emit and Count stay lock- and
// allocation-free — and the merged view depends only on shard contents
// and argument order, never on the host worker count. Nil logs are
// skipped; the inputs are not modified.
func Merge(logs ...*Log) *Log {
	total := 0
	for _, l := range logs {
		total += l.Len()
	}
	type cursor struct {
		events []Event
		pos    int
	}
	curs := make([]cursor, 0, len(logs))
	for _, l := range logs {
		if l.Len() > 0 {
			curs = append(curs, cursor{events: l.Events()})
		}
	}
	out := &Log{events: make([]Event, 0, total)}
	for {
		best := -1
		for i := range curs {
			if curs[i].pos >= len(curs[i].events) {
				continue
			}
			if best < 0 || curs[i].events[curs[i].pos].At < curs[best].events[curs[best].pos].At {
				best = i
			}
		}
		if best < 0 {
			return out
		}
		out.events = append(out.events, curs[best].events[curs[best].pos])
		curs[best].pos++
	}
}

// String renders the whole log, one event per line.
func (l *Log) String() string {
	if l == nil {
		return ""
	}
	var b strings.Builder
	for _, e := range l.events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
