// Package quicksand is the root of a full reproduction of "Unleashing
// True Utility Computing with Quicksand" (HotOS '23): a framework for
// fungible applications built from resource proclets that migrate,
// split, and merge at millisecond granularity, together with the Nu
// proclet substrate, a deterministic virtual-time cluster simulator,
// sharded data structures, a distributed thread pool, flat storage,
// baselines, and a benchmark harness regenerating every figure in the
// paper's evaluation.
//
// Start with README.md for the layout, DESIGN.md for the system
// inventory and experiment index, and EXPERIMENTS.md for measured
// results against the paper. The root package exists to host the
// repository-level benchmark suite (bench_test.go); the library lives
// under internal/.
package quicksand
